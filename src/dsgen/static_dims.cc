// Generators for the static dimensions: date_dim, time_dim, income_band,
// ship_mode, reason, and the two cross-product demographics dimensions.
// Static dimensions are loaded once and never touched by data maintenance
// (paper §4.2).

#include <array>

#include "dist/domains.h"
#include "dsgen/column_stream.h"
#include "dsgen/generator.h"
#include "dsgen/generators_internal.h"
#include "dsgen/keys.h"
#include "dsgen/render.h"
#include "scaling/scaling.h"
#include "util/string_util.h"

namespace tpcds {
namespace internal_dsgen {
namespace {

bool IsHoliday(Date d) {
  // New Year, Independence Day, Thanksgiving-week Thursday, Christmas.
  int m = d.month();
  int day = d.day();
  if (m == 1 && day == 1) return true;
  if (m == 7 && day == 4) return true;
  if (m == 12 && day == 25) return true;
  if (m == 11 && d.DayOfWeek() == 4 && day >= 22 && day <= 28) return true;
  return false;
}

class DateDimGenerator : public TableGenerator {
 public:
  explicit DateDimGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "date_dim") {}

  int64_t NumUnits() const override { return ScalingModel::DateDimRows(); }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    RowBuilder row;
    Date base = ScalingModel::DateDimBeginDate();
    for (int64_t i = first; i < first + count; ++i) {
      Date d = base.AddDays(static_cast<int>(i));
      int64_t sk = i + 1;
      int year = d.year();
      int month = d.month();
      row.Reset(28);
      row.AddKey(sk);
      row.AddString(BusinessKey(static_cast<uint64_t>(sk)));
      row.AddDate(d);
      row.AddInt((year - 1900) * 12 + month - 1);        // d_month_seq
      row.AddInt((d - base) / 7 + 1);                    // d_week_seq
      row.AddInt((year - 1900) * 4 + d.Quarter() - 1);   // d_quarter_seq
      row.AddInt(year);
      row.AddInt(d.DayOfWeek());
      row.AddInt(month);
      row.AddInt(d.day());
      row.AddInt(d.Quarter());
      row.AddInt(year);                                  // d_fy_year
      row.AddInt((year - 1900) * 4 + d.Quarter() - 1);   // d_fy_quarter_seq
      row.AddInt((d - base) / 7 + 1);                    // d_fy_week_seq
      row.AddString(d.DayName());
      row.AddString(StringPrintf("%dQ%d", year, d.Quarter()));
      row.AddFlag(IsHoliday(d));
      row.AddFlag(d.DayOfWeek() >= 6);
      row.AddFlag(IsHoliday(d.AddDays(-1)));
      Date first_dom = Date::FromYmd(year, month, 1);
      row.AddInt(DateToSk(first_dom));
      row.AddInt(DateToSk(d.EndOfMonth()));
      // Same day last year / last quarter (clamped to month length).
      int ly_day = std::min(d.day(), Date::DaysInMonth(year - 1, month));
      row.AddInt(DateToSk(Date::FromYmd(year - 1, month, ly_day)));
      int lq_month = month <= 3 ? month + 9 : month - 3;
      int lq_year = month <= 3 ? year - 1 : year;
      int lq_day = std::min(d.day(), Date::DaysInMonth(lq_year, lq_month));
      row.AddInt(DateToSk(Date::FromYmd(lq_year, lq_month, lq_day)));
      row.AddFlag(false);  // d_current_day
      row.AddFlag(false);  // d_current_week
      row.AddFlag(false);  // d_current_month
      row.AddFlag(false);  // d_current_quarter
      row.AddFlag(false);  // d_current_year
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

class TimeDimGenerator : public TableGenerator {
 public:
  explicit TimeDimGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "time_dim") {}

  int64_t NumUnits() const override { return 86400; }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      int sec = static_cast<int>(i);
      int hour = sec / 3600;
      int minute = (sec % 3600) / 60;
      int second = sec % 60;
      row.Reset(10);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(i + 1)));
      row.AddInt(sec);
      row.AddInt(hour);
      row.AddInt(minute);
      row.AddInt(second);
      row.AddString(hour < 12 ? "AM" : "PM");
      row.AddString(hour < 8 ? "third" : (hour < 16 ? "first" : "second"));
      row.AddString(hour < 6    ? "night"
                    : hour < 12 ? "morning"
                    : hour < 18 ? "afternoon"
                                : "evening");
      if (hour >= 6 && hour < 9) {
        row.AddString("breakfast");
      } else if (hour >= 11 && hour < 14) {
        row.AddString("lunch");
      } else if (hour >= 17 && hour < 21) {
        row.AddString("dinner");
      } else {
        row.AddNull();
      }
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

class IncomeBandGenerator : public TableGenerator {
 public:
  explicit IncomeBandGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "income_band") {}

  int64_t NumUnits() const override { return 20; }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      row.Reset(3);
      row.AddKey(i + 1);
      row.AddInt(i == 0 ? 0 : i * 10000 + 1);
      row.AddInt((i + 1) * 10000);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

class ShipModeGenerator : public TableGenerator {
 public:
  explicit ShipModeGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "ship_mode") {}

  int64_t NumUnits() const override { return 20; }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream contract(options().master_seed, kTidShipMode, 1, 2);
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      contract.BeginRow(i);
      row.Reset(6);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(i + 1)));
      row.AddString(domains::ShipModeTypes().value(
          static_cast<size_t>(i) / 4 % domains::ShipModeTypes().size()));
      row.AddString(domains::ShipModeCodes().value(
          static_cast<size_t>(i) % 4));
      row.AddString(domains::ShipModeCarriers().value(
          static_cast<size_t>(i) % domains::ShipModeCarriers().size()));
      // Contract ids are opaque fixed-width codes.
      uint64_t c1 = contract.rng()->NextUint64();
      uint64_t c2 = contract.rng()->NextUint64();
      row.AddString(StringPrintf("%08llX%08llX",
                                 static_cast<unsigned long long>(c1 >> 32),
                                 static_cast<unsigned long long>(c2 >> 32)));
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

class ReasonGenerator : public TableGenerator {
 public:
  explicit ReasonGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "reason") {}

  int64_t NumUnits() const override {
    return ScalingModel::RowCount("reason", sf());
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    RowBuilder row;
    const Distribution& descs = domains::ReasonDescriptions();
    for (int64_t i = first; i < first + count; ++i) {
      row.Reset(3);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(i + 1)));
      row.AddString(descs.value(static_cast<size_t>(i) % descs.size()));
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

/// customer_demographics is a pure cross-product of its attribute domains
/// — no RNG involved; row content is the mixed-radix decomposition of the
/// surrogate index. Development scales (< 1) shrink the purchase-estimate
/// and dependent-count domains.
class CustomerDemographicsGenerator : public TableGenerator {
 public:
  explicit CustomerDemographicsGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "customer_demographics") {
    full_ = options.scale_factor >= 1.0;
  }

  int64_t NumUnits() const override {
    return ScalingModel::RowCount("customer_demographics", sf());
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    RowBuilder row;
    const Distribution& genders = domains::Genders();
    const Distribution& marital = domains::MaritalStatuses();
    const Distribution& education = domains::EducationStatuses();
    const Distribution& credit = domains::CreditRatings();
    const int64_t purchase_domain = full_ ? 20 : 2;
    const int64_t dep_domain = full_ ? 7 : 3;
    for (int64_t i = first; i < first + count; ++i) {
      int64_t v = i;
      int64_t gender = v % 2;
      v /= 2;
      int64_t ms = v % 5;
      v /= 5;
      int64_t edu = v % 7;
      v /= 7;
      int64_t purchase = v % purchase_domain;
      v /= purchase_domain;
      int64_t cr = v % 4;
      v /= 4;
      int64_t dep = v % dep_domain;
      v /= dep_domain;
      int64_t dep_emp = v % dep_domain;
      v /= dep_domain;
      int64_t dep_col = v % dep_domain;
      row.Reset(9);
      row.AddKey(i + 1);
      row.AddString(genders.value(static_cast<size_t>(gender)));
      row.AddString(marital.value(static_cast<size_t>(ms)));
      row.AddString(education.value(static_cast<size_t>(edu)));
      row.AddInt((purchase + 1) * 500);
      row.AddString(credit.value(static_cast<size_t>(cr)));
      row.AddInt(dep);
      row.AddInt(dep_emp);
      row.AddInt(dep_col);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  bool full_;
};

/// household_demographics crosses income_band x buy_potential x
/// dependents x vehicles (20 x 6 x 10 x 6 = 7200 rows at every scale).
class HouseholdDemographicsGenerator : public TableGenerator {
 public:
  explicit HouseholdDemographicsGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "household_demographics") {}

  int64_t NumUnits() const override { return 7200; }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    RowBuilder row;
    const Distribution& potentials = domains::BuyPotentials();
    for (int64_t i = first; i < first + count; ++i) {
      int64_t v = i;
      int64_t ib = v % 20;
      v /= 20;
      int64_t bp = v % 6;
      v /= 6;
      int64_t dep = v % 10;
      v /= 10;
      int64_t vehicles = v % 6;
      row.Reset(5);
      row.AddKey(i + 1);
      row.AddKey(ib + 1);
      row.AddString(potentials.value(static_cast<size_t>(bp)));
      row.AddInt(dep);
      row.AddInt(vehicles);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<TableGenerator> MakeDateDim(const GeneratorOptions& o) {
  return std::make_unique<DateDimGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeTimeDim(const GeneratorOptions& o) {
  return std::make_unique<TimeDimGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeIncomeBand(const GeneratorOptions& o) {
  return std::make_unique<IncomeBandGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeShipMode(const GeneratorOptions& o) {
  return std::make_unique<ShipModeGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeReason(const GeneratorOptions& o) {
  return std::make_unique<ReasonGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeCustomerDemographics(
    const GeneratorOptions& o) {
  return std::make_unique<CustomerDemographicsGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeHouseholdDemographics(
    const GeneratorOptions& o) {
  return std::make_unique<HouseholdDemographicsGenerator>(o);
}

}  // namespace internal_dsgen
}  // namespace tpcds
