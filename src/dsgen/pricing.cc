#include "dsgen/pricing.h"

namespace tpcds {

SalesPricing MakeSalesPricing(RngStream* rng) {
  SalesPricing p;
  p.quantity = static_cast<int>(rng->UniformInt(1, 100));            // 1
  p.wholesale_cost = Decimal::FromCents(rng->UniformInt(100, 10000));  // 2
  double markup = 1.0 + rng->NextDouble();                           // 3
  p.list_price = p.wholesale_cost.MultipliedBy(markup);
  double discount = rng->NextDouble();                               // 4
  p.sales_price = p.list_price.MultipliedBy(1.0 - discount);
  p.ext_discount_amt = (p.list_price - p.sales_price) * p.quantity;
  p.ext_sales_price = p.sales_price * p.quantity;
  p.ext_wholesale_cost = p.wholesale_cost * p.quantity;
  p.ext_list_price = p.list_price * p.quantity;
  double tax_rate = rng->NextDouble() * 0.09;                        // 5
  p.ext_tax = p.ext_sales_price.MultipliedBy(tax_rate);
  double coupon_draw = rng->NextDouble();                            // 6
  if (coupon_draw < 0.15) {
    // Coupon covers up to the full extended sales price.
    p.coupon_amt = p.ext_sales_price.MultipliedBy(coupon_draw / 0.15);
  }
  p.ext_ship_cost = p.ext_list_price.MultipliedBy(rng->NextDouble() * 0.5);  // 7
  p.net_paid = p.ext_sales_price - p.coupon_amt;
  p.net_paid_inc_tax = p.net_paid + p.ext_tax;
  p.net_paid_inc_ship = p.net_paid + p.ext_ship_cost;
  p.net_paid_inc_ship_tax = p.net_paid_inc_ship + p.ext_tax;
  p.net_profit = p.net_paid - p.ext_wholesale_cost;
  return p;
}

ReturnPricing MakeReturnPricing(const SalesPricing& sale, RngStream* rng) {
  ReturnPricing r;
  r.return_quantity =
      static_cast<int>(rng->UniformInt(1, sale.quantity));           // 1
  r.return_amt = sale.sales_price * r.return_quantity;
  // Tax comes back proportionally to the returned units.
  if (sale.quantity > 0) {
    r.return_tax = Decimal::FromCents(sale.ext_tax.cents() *
                                      r.return_quantity / sale.quantity);
  }
  r.return_amt_inc_tax = r.return_amt + r.return_tax;
  r.fee = Decimal::FromCents(rng->UniformInt(50, 10000));            // 2
  r.return_ship_cost =
      r.return_amt.MultipliedBy(rng->NextDouble() * 0.5);            // 3
  // Split the refund: cash first, then reversed charge, remainder credit.
  double cash_share = rng->NextDouble();                             // 4
  r.refunded_cash = r.return_amt.MultipliedBy(cash_share);
  Decimal rest = r.return_amt - r.refunded_cash;
  r.reversed_charge = Decimal::FromCents(rest.cents() / 2);
  r.store_credit = rest - r.reversed_charge;
  r.net_loss = r.return_ship_cost + r.fee + r.return_tax;
  return r;
}

}  // namespace tpcds
