#ifndef TPCDS_DSGEN_PARALLEL_H_
#define TPCDS_DSGEN_PARALLEL_H_

#include <string>

#include "dsgen/options.h"
#include "util/flatfile.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace tpcds {

/// Generates `table` with `num_chunks` workers on `pool` and streams the
/// chunks into `sink` in chunk order. Because every unit is independently
/// seeded (see ColumnStream), the output is bit-identical to a serial run
/// — the parallel-generation design of the official tooling (paper ref
/// [11], MUDD). Chunk results are buffered in memory; callers size
/// num_chunks so one chunk fits comfortably.
Status GenerateTableParallel(const std::string& table,
                             const GeneratorOptions& options,
                             int num_chunks, ThreadPool* pool,
                             RowSink* sink);

}  // namespace tpcds

#endif  // TPCDS_DSGEN_PARALLEL_H_
