// Generator for the inventory fact table: weekly stock snapshots for every
// (distinct item, warehouse) pair over the 5-year window. Inventory is the
// fact table shared by the catalog and web channels (paper §2.2).

#include "dsgen/column_stream.h"
#include "dsgen/generator.h"
#include "dsgen/generators_internal.h"
#include "dsgen/keys.h"
#include "dsgen/render.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace internal_dsgen {
namespace {

class InventoryGenerator : public TableGenerator {
 public:
  explicit InventoryGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "inventory"),
        num_items_(ScalingModel::RowCount("item", sf())),
        num_warehouses_(ScalingModel::RowCount("warehouse", sf())) {
    distinct_items_ = num_items_ / 2;  // history-keeping: ~2 revisions/item
    if (distinct_items_ < 1) distinct_items_ = 1;
  }

  int64_t NumUnits() const override {
    return kWeeks * distinct_items_ * num_warehouses_;
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream stream(options().master_seed, kTidInventory, 1, 2);
    RowBuilder row;
    Date begin = ScalingModel::SalesBeginDate();
    for (int64_t i = first; i < first + count; ++i) {
      stream.BeginRow(i);
      RngStream* rng = stream.rng();
      int64_t v = i;
      int64_t warehouse = v % num_warehouses_;
      v /= num_warehouses_;
      int64_t item = v % distinct_items_;
      v /= distinct_items_;
      int64_t week = v;
      // Snapshots land on the Thursday of each week.
      Date snapshot = begin.AddDays(static_cast<int>(week * 7 + 3));
      int64_t quantity = rng->UniformInt(0, 1000);
      bool null_quantity = rng->NextDouble() < 0.05;

      row.Reset(4);
      row.AddKey(DateToSk(snapshot));
      // Every revision chain occupies a contiguous surrogate range of ~2;
      // pointing at the odd surrogates spreads snapshots over item rows.
      row.AddKey(item * 2 + 1);
      row.AddKey(warehouse + 1);
      if (null_quantity) {
        row.AddNull();
      } else {
        row.AddInt(quantity);
      }
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  static constexpr int64_t kWeeks = 261;
  int64_t num_items_;
  int64_t num_warehouses_;
  int64_t distinct_items_;
};

}  // namespace

std::unique_ptr<TableGenerator> MakeInventory(const GeneratorOptions& o) {
  return std::make_unique<InventoryGenerator>(o);
}

}  // namespace internal_dsgen
}  // namespace tpcds
