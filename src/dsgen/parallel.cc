#include "dsgen/parallel.h"

#include <memory>
#include <mutex>
#include <vector>

#include "dsgen/generator.h"

namespace tpcds {

Status GenerateTableParallel(const std::string& table,
                             const GeneratorOptions& options,
                             int num_chunks, ThreadPool* pool,
                             RowSink* sink) {
  if (num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  std::vector<MemoryRowSink> buffers(static_cast<size_t>(num_chunks));
  std::vector<Status> statuses(static_cast<size_t>(num_chunks));
  std::mutex mu;
  for (int chunk = 1; chunk <= num_chunks; ++chunk) {
    pool->Submit([&, chunk] {
      GeneratorOptions chunk_options = options;
      chunk_options.chunk = chunk;
      chunk_options.num_chunks = num_chunks;
      Result<std::unique_ptr<TableGenerator>> gen =
          MakeGenerator(table, chunk_options);
      Status st = gen.ok()
                      ? (*gen)->Generate(&buffers[static_cast<size_t>(
                            chunk - 1)])
                      : gen.status();
      std::lock_guard<std::mutex> lock(mu);
      statuses[static_cast<size_t>(chunk - 1)] = std::move(st);
    });
  }
  pool->WaitIdle();
  for (const Status& st : statuses) {
    TPCDS_RETURN_NOT_OK(st);
  }
  // Stream chunks to the sink in order: concatenation == serial run.
  for (MemoryRowSink& buffer : buffers) {
    for (const auto& row : buffer.rows()) {
      TPCDS_RETURN_NOT_OK(sink->Append(row));
    }
  }
  return Status::OK();
}

}  // namespace tpcds
