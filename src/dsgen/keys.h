#ifndef TPCDS_DSGEN_KEYS_H_
#define TPCDS_DSGEN_KEYS_H_

#include <cstdint>
#include <string>

#include "util/date.h"

namespace tpcds {

/// Renders the 16-character business key the official dsdgen uses for
/// *_id columns ("AAAAAAAABAAAAAAA" for index 1): base-26 digits of the
/// index written into a field of 'A's starting at position 8.
std::string BusinessKey(uint64_t index);

/// Surrogate key of a calendar date in date_dim (1-based; date_dim row 1 is
/// 1900-01-01).
int64_t DateToSk(Date date);

/// Inverse of DateToSk.
Date SkToDate(int64_t sk);

/// Surrogate key of a time-of-day in time_dim (1-based; row 1 is 00:00:00).
int64_t SecondsToTimeSk(int seconds_since_midnight);

}  // namespace tpcds

#endif  // TPCDS_DSGEN_KEYS_H_
