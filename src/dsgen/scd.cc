#include "dsgen/scd.h"

#include <cassert>

namespace tpcds {

RevisionMap::RevisionMap(uint64_t seed, int64_t surrogate_rows) {
  entries_.reserve(static_cast<size_t>(surrogate_rows));
  int64_t business_key = 0;
  while (static_cast<int64_t>(entries_.size()) < surrogate_rows) {
    ++business_key;
    // 1..3 revisions, deterministic per business key (avg 2).
    int revisions = 1 + static_cast<int>(
                            Mix64(seed ^ static_cast<uint64_t>(business_key)) %
                            3);
    int64_t remaining =
        surrogate_rows - static_cast<int64_t>(entries_.size());
    if (revisions > remaining) revisions = static_cast<int>(remaining);
    for (int r = 0; r < revisions; ++r) {
      entries_.push_back(Entry{business_key, r, revisions});
    }
  }
  num_business_keys_ = business_key;
}

RevisionWindow RevisionValidity(int revision, int num_revisions) {
  assert(num_revisions >= 1 && num_revisions <= 3);
  assert(revision >= 0 && revision < num_revisions);
  // Fixed split dates (taken from the official kit's convention): the
  // revision epochs start before the 5-year sales window so queries can
  // probe any revision. Revision i of k becomes valid at split i; the
  // newest revision of every business key is always the open one.
  static const Date kSplits[3] = {Date::FromYmd(1997, 10, 27),
                                  Date::FromYmd(1999, 10, 28),
                                  Date::FromYmd(2001, 10, 27)};
  RevisionWindow window;
  window.rec_begin_date = kSplits[revision];
  if (revision < num_revisions - 1) {
    window.rec_end_date = kSplits[revision + 1].AddDays(-1);
  }
  return window;
}

}  // namespace tpcds
