#ifndef TPCDS_DSGEN_SALES_OVERRIDES_H_
#define TPCDS_DSGEN_SALES_OVERRIDES_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "util/date.h"

namespace tpcds {

/// Adjustments the data-maintenance (refresh) pipeline applies when it
/// re-uses the sales generators to synthesise update sets (paper §4.2):
/// fresh tickets get numbers beyond the initial population, and their sale
/// dates are folded into the refresh window so inserts land in one
/// logically clustered date range (Fig. 10's partition-oriented insert).
struct SalesOverrides {
  /// Ticket number assigned to unit 0 (default: initial population).
  int64_t first_ticket_number = 1;
  /// When set, sold dates are remapped into [first, second] (inclusive).
  std::optional<std::pair<Date, Date>> date_window;
};

}  // namespace tpcds

#endif  // TPCDS_DSGEN_SALES_OVERRIDES_H_
