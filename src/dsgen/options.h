#ifndef TPCDS_DSGEN_OPTIONS_H_
#define TPCDS_DSGEN_OPTIONS_H_

#include <cstdint>

namespace tpcds {

/// Configuration of a data-generation run, mirroring the official dsdgen's
/// command line: -scale, -rngseed, and the -parallel/-child chunking flags.
struct GeneratorOptions {
  /// Raw data size in GB. Published runs use the discrete scale factors
  /// (100..100000); fractional values (e.g. 0.01) serve development.
  double scale_factor = 1.0;

  /// Master RNG seed; every (table, column) stream derives from it.
  /// Changing it produces a different but equally valid database.
  uint64_t master_seed = 19620718;

  /// Chunked generation: produce chunk `chunk` of `num_chunks` (1-based).
  /// Chunking is deterministic — the concatenation of all chunks is
  /// bit-identical to a single-chunk run.
  int chunk = 1;
  int num_chunks = 1;
};

}  // namespace tpcds

#endif  // TPCDS_DSGEN_OPTIONS_H_
