#ifndef TPCDS_DSGEN_COLUMN_STREAM_H_
#define TPCDS_DSGEN_COLUMN_STREAM_H_

#include <cstdint>

#include "util/random.h"

namespace tpcds {

/// An RNG stream owned by one logical column (or column group) of one
/// table, consuming a fixed budget of draws per row.
///
/// The fixed budget is what makes chunked generation deterministic: the
/// draws for row r always occupy stream offsets [r*budget, (r+1)*budget),
/// regardless of how many draws earlier rows actually used. BeginRow()
/// advances to a row's first draw — cheaply (sequential padding) when
/// generation is serial, via O(log n) seek when a worker jumps to its chunk.
class ColumnStream {
 public:
  /// `table_id`/`column_id` identify the stream; `draws_per_row` is the
  /// fixed per-row budget (callers must not draw more than this per row).
  ColumnStream(uint64_t master_seed, int table_id, int column_id,
               int draws_per_row)
      : rng_(DeriveSeed(master_seed, static_cast<uint64_t>(table_id),
                        static_cast<uint64_t>(column_id))),
        draws_per_row_(draws_per_row) {}

  /// Positions the stream at the first draw of `row` (0-based).
  void BeginRow(int64_t row) {
    uint64_t target = static_cast<uint64_t>(row) *
                      static_cast<uint64_t>(draws_per_row_);
    uint64_t at = rng_.offset();
    if (at == target) return;
    // Within a short forward distance, padding beats the log-time seek.
    if (at < target && target - at <= 4 * static_cast<uint64_t>(draws_per_row_)) {
      while (rng_.offset() < target) rng_.NextUint64();
      return;
    }
    rng_.SeekTo(target);
  }

  RngStream* rng() { return &rng_; }
  int draws_per_row() const { return draws_per_row_; }

 private:
  RngStream rng_;
  int draws_per_row_;
};

}  // namespace tpcds

#endif  // TPCDS_DSGEN_COLUMN_STREAM_H_
