// Generators for the customer-side dimensions: customer_address and
// customer. Both are non-history-keeping (updates overwrite in place,
// paper Fig. 8).

#include <algorithm>

#include "dist/domains.h"
#include "dsgen/address.h"
#include "dsgen/column_stream.h"
#include "dsgen/generator.h"
#include "dsgen/generators_internal.h"
#include "dsgen/keys.h"
#include "dsgen/render.h"
#include "scaling/scaling.h"
#include "util/string_util.h"

namespace tpcds {
namespace internal_dsgen {
namespace {

class CustomerAddressGenerator : public TableGenerator {
 public:
  explicit CustomerAddressGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "customer_address") {}

  int64_t NumUnits() const override {
    return ScalingModel::RowCount("customer_address", sf());
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream addr(options().master_seed, kTidCustomerAddress, 1,
                      kAddressDraws);
    ColumnStream misc(options().master_seed, kTidCustomerAddress, 2, 1);
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      addr.BeginRow(i);
      misc.BeginRow(i);
      Address a = MakeAddress(addr.rng(), /*county_domain=*/0);
      row.Reset(13);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(i + 1)));
      row.AddString(a.street_number);
      row.AddString(a.street_name);
      row.AddString(a.street_type);
      row.AddString(a.suite_number);
      row.AddString(a.city);
      row.AddString(a.county);
      row.AddString(a.state);
      row.AddString(a.zip);
      row.AddString(a.country);
      row.AddDecimal(a.gmt_offset);
      row.AddString(domains::LocationTypes().PickWeighted(misc.rng()));
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

class CustomerGenerator : public TableGenerator {
 public:
  explicit CustomerGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "customer"),
        num_addresses_(ScalingModel::RowCount("customer_address", sf())),
        num_cdemo_(ScalingModel::RowCount("customer_demographics", sf())),
        num_hdemo_(ScalingModel::RowCount("household_demographics", sf())) {}

  int64_t NumUnits() const override {
    return ScalingModel::RowCount("customer", sf());
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    // Budget: 16 draws per customer (13 used), consumed in a fixed order.
    ColumnStream stream(options().master_seed, kTidCustomer, 1, 16);
    RowBuilder row;
    Date sales_begin = ScalingModel::SalesBeginDate();
    int32_t sales_days = ScalingModel::SalesEndDate() - sales_begin;
    for (int64_t i = first; i < first + count; ++i) {
      stream.BeginRow(i);
      RngStream* rng = stream.rng();
      int64_t sk = i + 1;
      std::string salutation = domains::Salutations().PickWeighted(rng);
      std::string first_name = domains::FirstNames().PickWeighted(rng);
      std::string last_name = domains::LastNames().PickWeighted(rng);
      int64_t cdemo = rng->UniformInt(1, num_cdemo_);
      int64_t hdemo = rng->UniformInt(1, num_hdemo_);
      int64_t addr = rng->UniformInt(1, num_addresses_);
      Date first_sales =
          sales_begin.AddDays(static_cast<int>(rng->UniformInt(0, sales_days)));
      int birth_year = static_cast<int>(rng->UniformInt(1924, 1992));
      int birth_month = static_cast<int>(rng->UniformInt(1, 12));
      int birth_day = static_cast<int>(
          rng->UniformInt(1, Date::DaysInMonth(birth_year, birth_month)));
      bool preferred = rng->NextDouble() < 0.5;
      std::string country = domains::Countries().PickUniform(rng);
      Date last_review =
          first_sales.AddDays(static_cast<int>(rng->UniformInt(0, 365)));

      row.Reset(18);
      row.AddKey(sk);
      row.AddString(BusinessKey(static_cast<uint64_t>(sk)));
      row.AddKey(cdemo);
      row.AddKey(hdemo);
      row.AddKey(addr);
      row.AddKey(DateToSk(first_sales.AddDays(30)));  // first ship-to
      row.AddKey(DateToSk(first_sales));
      row.AddString(salutation);
      row.AddString(first_name);
      row.AddString(last_name);
      row.AddFlag(preferred);
      row.AddInt(birth_day);
      row.AddInt(birth_month);
      row.AddInt(birth_year);
      row.AddString(country);
      row.AddNull();  // c_login is NULL in the official data as well
      row.AddString(StringPrintf("%s.%s@example.com", first_name.c_str(),
                                 last_name.c_str()));
      row.AddKey(DateToSk(last_review));
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  int64_t num_addresses_;
  int64_t num_cdemo_;
  int64_t num_hdemo_;
};

}  // namespace

std::unique_ptr<TableGenerator> MakeCustomerAddress(
    const GeneratorOptions& o) {
  return std::make_unique<CustomerAddressGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeCustomer(const GeneratorOptions& o) {
  return std::make_unique<CustomerGenerator>(o);
}

}  // namespace internal_dsgen
}  // namespace tpcds
