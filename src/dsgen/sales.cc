// Generators for the six sales/returns fact tables.
//
// Generation is organised per *ticket* (store) / *order* (catalog, web):
// each ticket is an independently seeded unit holding 1..20 line items
// (average 10.5, the paper's shopping-cart size). Returns are derived in
// the same pass — a line item is returned with a channel-specific
// probability, and the return row re-uses the sale's item, keys and
// pricing, exactly how the official dsdgen couples the two tables.

#include <algorithm>
#include <optional>

#include "dist/zones.h"
#include "dsgen/column_stream.h"
#include "dsgen/generator.h"
#include "dsgen/generators_internal.h"
#include "dsgen/keys.h"
#include "dsgen/pricing.h"
#include "dsgen/render.h"
#include "dsgen/sales_overrides.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace internal_dsgen {
namespace {

constexpr int kMaxItemsPerTicket = 20;  // uniform 1..20 -> mean 10.5

enum class Channel { kStore, kCatalog, kWeb };

struct ChannelSpec {
  Channel channel;
  int table_id;
  const char* sales_table;
  double line_items_per_sf;  // from the scaling model
  double return_rate;
};

ChannelSpec SpecFor(const std::string& name) {
  if (name == "store") {
    // 140000/2880000: the paper's Table 2 ratio of returns to sales.
    return {Channel::kStore, kTidStoreSales, "store_sales", 2880000.0,
            140000.0 / 2880000.0};
  }
  if (name == "catalog") {
    return {Channel::kCatalog, kTidCatalogSales, "catalog_sales", 1440000.0,
            0.10};
  }
  return {Channel::kWeb, kTidWebSales, "web_sales", 720000.0, 0.10};
}

/// Ticket-level context shared by all line items of one ticket.
struct TicketContext {
  Date sold_date;
  int64_t sold_time_sk;
  int64_t customer;
  int64_t cdemo;
  int64_t hdemo;
  int64_t addr;
  int64_t location1;  // store | call_center | web_site
  int64_t location2;  // unused | catalog_page | web_page
  Date ship_date;
  int64_t ship_mode;
  int64_t warehouse;
  int64_t ship_customer;
  int64_t ship_cdemo;
  int64_t ship_hdemo;
  int64_t ship_addr;
  bool demo_null;  // the demographic trio is NULL on this ticket
};

class SalesChannelCore {
 public:
  SalesChannelCore(const GeneratorOptions& options, const ChannelSpec& spec,
                   const SalesOverrides& overrides)
      : options_(options),
        spec_(spec),
        overrides_(overrides),
        dates_(ScalingModel::SalesBeginDate(), ScalingModel::SalesEndDate()),
        ticket_stream_(options.master_seed, spec.table_id, 1, 16),
        item_stream_(options.master_seed, spec.table_id, 2, 4),
        pricing_stream_(options.master_seed, spec.table_id, 3, 8),
        return_stream_(options.master_seed, spec.table_id, 4, 8),
        basket_stream_(options.master_seed, spec.table_id, 5, 2) {
    double sf = options.scale_factor;
    num_tickets_ = std::max<int64_t>(
        1, static_cast<int64_t>(spec.line_items_per_sf * sf / 10.5 + 0.5));
    num_customers_ = ScalingModel::RowCount("customer", sf);
    num_cdemo_ = ScalingModel::RowCount("customer_demographics", sf);
    num_hdemo_ = ScalingModel::RowCount("household_demographics", sf);
    num_addresses_ = ScalingModel::RowCount("customer_address", sf);
    num_items_ = ScalingModel::RowCount("item", sf);
    num_promotions_ = ScalingModel::RowCount("promotion", sf);
    num_reasons_ = ScalingModel::RowCount("reason", sf);
    num_stores_ = ScalingModel::RowCount("store", sf);
    num_call_centers_ = ScalingModel::RowCount("call_center", sf);
    num_catalog_pages_ = ScalingModel::RowCount("catalog_page", sf);
    num_web_sites_ = ScalingModel::RowCount("web_site", sf);
    num_web_pages_ = ScalingModel::RowCount("web_page", sf);
    num_ship_modes_ = ScalingModel::RowCount("ship_mode", sf);
    num_warehouses_ = ScalingModel::RowCount("warehouse", sf);
    items_seed_ = DeriveSeed(options.master_seed,
                             static_cast<uint64_t>(spec.table_id), 99);
  }

  int64_t num_tickets() const { return num_tickets_; }

  int ItemsInTicket(int64_t ticket) const {
    return 1 + static_cast<int>(
                   Mix64(items_seed_ ^ static_cast<uint64_t>(ticket)) %
                   kMaxItemsPerTicket);
  }

  Status Generate(int64_t first, int64_t count, RowSink* sales_sink,
                  RowSink* returns_sink) {
    RowBuilder sale_row;
    RowBuilder return_row;
    for (int64_t t = first; t < first + count; ++t) {
      TicketContext ctx = MakeTicketContext(t);
      int64_t ticket_number = overrides_.first_ticket_number + t;
      int items = ItemsInTicket(t);
      // Line items of one ticket carry *distinct* items (the sales PK is
      // (item_sk, ticket_number)): walk an arithmetic progression whose
      // stride keeps 20 steps collision-free.
      basket_stream_.BeginRow(t);
      int64_t base = basket_stream_.rng()->UniformInt(0, num_items_ - 1);
      int64_t max_step = std::max<int64_t>(
          1, (num_items_ - 1) / kMaxItemsPerTicket);
      int64_t step = basket_stream_.rng()->UniformInt(1, max_step);
      if (items > num_items_) items = static_cast<int>(num_items_);
      for (int j = 0; j < items; ++j) {
        int64_t slot = t * kMaxItemsPerTicket + j;
        item_stream_.BeginRow(slot);
        pricing_stream_.BeginRow(slot);
        RngStream* irng = item_stream_.rng();
        int64_t item = 1 + (base + j * step) % num_items_;
        int64_t promo = irng->UniformInt(1, num_promotions_);
        bool promo_null = irng->NextDouble() < 0.2;
        bool returned = irng->NextDouble() < spec_.return_rate;
        if (promo_null) promo = 0;
        SalesPricing pricing = MakeSalesPricing(pricing_stream_.rng());

        if (sales_sink != nullptr) {
          RenderSale(ctx, ticket_number, item, promo, pricing, &sale_row);
          TPCDS_RETURN_NOT_OK(sales_sink->Append(sale_row.fields()));
        }
        if (returned && returns_sink != nullptr) {
          return_stream_.BeginRow(slot);
          RenderReturn(ctx, ticket_number, item, pricing,
                       return_stream_.rng(), &return_row);
          TPCDS_RETURN_NOT_OK(returns_sink->Append(return_row.fields()));
        }
      }
    }
    return Status::OK();
  }

 private:
  Date ClampDate(Date d) const {
    if (!overrides_.date_window.has_value()) return d;
    auto [begin, end] = *overrides_.date_window;
    int32_t span = end - begin + 1;
    int32_t offset = (d - dates_.begin()) % span;
    return begin.AddDays(offset);
  }

  TicketContext MakeTicketContext(int64_t ticket) {
    ticket_stream_.BeginRow(ticket);
    RngStream* rng = ticket_stream_.rng();
    TicketContext ctx;
    ctx.sold_date = ClampDate(dates_.Pick(rng));                      // 1
    ctx.sold_time_sk = SecondsToTimeSk(
        static_cast<int>(rng->UniformInt(0, 86399)));                 // 2
    ctx.customer = rng->UniformInt(1, num_customers_);                // 3
    ctx.cdemo = rng->UniformInt(1, num_cdemo_);                       // 4
    ctx.hdemo = rng->UniformInt(1, num_hdemo_);                       // 5
    ctx.addr = rng->UniformInt(1, num_addresses_);                    // 6
    switch (spec_.channel) {
      case Channel::kStore:
        ctx.location1 = rng->UniformInt(1, num_stores_);              // 7
        rng->NextUint64();                                            // 8
        ctx.location2 = 0;
        break;
      case Channel::kCatalog:
        ctx.location1 = rng->UniformInt(1, num_call_centers_);        // 7
        ctx.location2 = rng->UniformInt(1, num_catalog_pages_);       // 8
        break;
      case Channel::kWeb:
        ctx.location1 = rng->UniformInt(1, num_web_sites_);           // 7
        ctx.location2 = rng->UniformInt(1, num_web_pages_);           // 8
        break;
    }
    int ship_lag = static_cast<int>(rng->UniformInt(2, 120));         // 9
    ctx.ship_date = ctx.sold_date.AddDays(ship_lag);
    ctx.ship_mode = rng->UniformInt(1, num_ship_modes_);              // 10
    ctx.warehouse = rng->UniformInt(1, num_warehouses_);              // 11
    bool ship_to_other = rng->NextDouble() < 0.15;                    // 12
    int64_t other_customer = rng->UniformInt(1, num_customers_);      // 13
    int64_t other_cdemo = rng->UniformInt(1, num_cdemo_);             // 14
    int64_t other_hdemo = rng->UniformInt(1, num_hdemo_);             // 15
    int64_t other_addr = rng->UniformInt(1, num_addresses_);          // 16
    if (ship_to_other) {
      ctx.ship_customer = other_customer;
      ctx.ship_cdemo = other_cdemo;
      ctx.ship_hdemo = other_hdemo;
      ctx.ship_addr = other_addr;
    } else {
      ctx.ship_customer = ctx.customer;
      ctx.ship_cdemo = ctx.cdemo;
      ctx.ship_hdemo = ctx.hdemo;
      ctx.ship_addr = ctx.addr;
    }
    // ~3.5% of tickets omit the demographic foreign keys (NULLs stress the
    // optimizer's statistics; derived from the customer draw, no new draw).
    ctx.demo_null = (Mix64(static_cast<uint64_t>(ctx.customer) ^
                           items_seed_) % 1000) < 35;
    return ctx;
  }

  void AddPricing(const SalesPricing& p, bool with_ship, RowBuilder* row) {
    row->AddInt(p.quantity);
    row->AddDecimal(p.wholesale_cost);
    row->AddDecimal(p.list_price);
    row->AddDecimal(p.sales_price);
    row->AddDecimal(p.ext_discount_amt);
    row->AddDecimal(p.ext_sales_price);
    row->AddDecimal(p.ext_wholesale_cost);
    row->AddDecimal(p.ext_list_price);
    row->AddDecimal(p.ext_tax);
    row->AddDecimal(p.coupon_amt);
    if (with_ship) row->AddDecimal(p.ext_ship_cost);
    row->AddDecimal(p.net_paid);
    row->AddDecimal(p.net_paid_inc_tax);
    if (with_ship) {
      row->AddDecimal(p.net_paid_inc_ship);
      row->AddDecimal(p.net_paid_inc_ship_tax);
    }
    row->AddDecimal(p.net_profit);
  }

  void RenderSale(const TicketContext& ctx, int64_t ticket_number,
                  int64_t item, int64_t promo, const SalesPricing& pricing,
                  RowBuilder* row) {
    switch (spec_.channel) {
      case Channel::kStore:
        row->Reset(23);
        row->AddKey(DateToSk(ctx.sold_date));
        row->AddKey(ctx.sold_time_sk);
        row->AddKey(item);
        row->AddKey(ctx.customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.addr);
        row->AddKey(ctx.location1);
        row->AddKey(promo);
        row->AddKey(ticket_number);
        AddPricing(pricing, /*with_ship=*/false, row);
        break;
      case Channel::kCatalog:
        row->Reset(34);
        row->AddKey(DateToSk(ctx.sold_date));
        row->AddKey(ctx.sold_time_sk);
        row->AddKey(DateToSk(ctx.ship_date));
        row->AddKey(ctx.customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.addr);
        row->AddKey(ctx.ship_customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_addr);
        row->AddKey(ctx.location1);
        row->AddKey(ctx.location2);
        row->AddKey(ctx.ship_mode);
        row->AddKey(ctx.warehouse);
        row->AddKey(item);
        row->AddKey(promo);
        row->AddKey(ticket_number);
        AddPricing(pricing, /*with_ship=*/true, row);
        break;
      case Channel::kWeb:
        row->Reset(34);
        row->AddKey(DateToSk(ctx.sold_date));
        row->AddKey(ctx.sold_time_sk);
        row->AddKey(DateToSk(ctx.ship_date));
        row->AddKey(item);
        row->AddKey(ctx.customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.addr);
        row->AddKey(ctx.ship_customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_addr);
        row->AddKey(ctx.location2);  // ws_web_page_sk
        row->AddKey(ctx.location1);  // ws_web_site_sk
        row->AddKey(ctx.ship_mode);
        row->AddKey(ctx.warehouse);
        row->AddKey(promo);
        row->AddKey(ticket_number);
        AddPricing(pricing, /*with_ship=*/true, row);
        break;
    }
  }

  void AddReturnPricing(const ReturnPricing& r, RowBuilder* row) {
    row->AddInt(r.return_quantity);
    row->AddDecimal(r.return_amt);
    row->AddDecimal(r.return_tax);
    row->AddDecimal(r.return_amt_inc_tax);
    row->AddDecimal(r.fee);
    row->AddDecimal(r.return_ship_cost);
    row->AddDecimal(r.refunded_cash);
    row->AddDecimal(r.reversed_charge);
    row->AddDecimal(r.store_credit);
    row->AddDecimal(r.net_loss);
  }

  void RenderReturn(const TicketContext& ctx, int64_t ticket_number,
                    int64_t item, const SalesPricing& pricing,
                    RngStream* rng, RowBuilder* row) {
    // Fixed 8-draw budget: lag, time, other-customer flag, reason, 4 pricing.
    int lag = static_cast<int>(rng->UniformInt(1, 90));               // 1
    Date returned_date = ctx.sold_date.AddDays(lag);
    int64_t return_time = SecondsToTimeSk(
        static_cast<int>(rng->UniformInt(0, 86399)));                 // 2
    bool other = rng->NextDouble() < 0.2;                             // 3
    int64_t returning_customer =
        other ? 1 + static_cast<int64_t>(
                        Mix64(items_seed_ ^
                              static_cast<uint64_t>(ticket_number)) %
                        static_cast<uint64_t>(num_customers_))
              : ctx.customer;
    int64_t reason = rng->UniformInt(1, num_reasons_);                // 4
    ReturnPricing rp = MakeReturnPricing(pricing, rng);               // 5..8

    switch (spec_.channel) {
      case Channel::kStore:
        row->Reset(20);
        row->AddKey(DateToSk(returned_date));
        row->AddKey(return_time);
        row->AddKey(item);
        row->AddKey(returning_customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.addr);
        row->AddKey(ctx.location1);
        row->AddKey(reason);
        row->AddKey(ticket_number);
        AddReturnPricing(rp, row);
        break;
      case Channel::kCatalog:
        row->Reset(27);
        row->AddKey(DateToSk(returned_date));
        row->AddKey(return_time);
        row->AddKey(item);
        row->AddKey(ctx.customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.addr);
        row->AddKey(returning_customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_addr);
        row->AddKey(ctx.location1);
        row->AddKey(ctx.location2);
        row->AddKey(ctx.ship_mode);
        row->AddKey(ctx.warehouse);
        row->AddKey(reason);
        row->AddKey(ticket_number);
        AddReturnPricing(rp, row);
        break;
      case Channel::kWeb:
        row->Reset(24);
        row->AddKey(DateToSk(returned_date));
        row->AddKey(return_time);
        row->AddKey(item);
        row->AddKey(ctx.customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.addr);
        row->AddKey(returning_customer);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_cdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_hdemo);
        row->AddKey(ctx.demo_null ? 0 : ctx.ship_addr);
        row->AddKey(ctx.location2);  // wr_web_page_sk
        row->AddKey(reason);
        row->AddKey(ticket_number);
        AddReturnPricing(rp, row);
        break;
    }
  }

  GeneratorOptions options_;
  ChannelSpec spec_;
  SalesOverrides overrides_;
  SalesDateDistribution dates_;
  ColumnStream ticket_stream_;
  ColumnStream item_stream_;
  ColumnStream pricing_stream_;
  ColumnStream return_stream_;
  ColumnStream basket_stream_;
  int64_t num_tickets_ = 0;
  int64_t num_customers_ = 0;
  int64_t num_cdemo_ = 0;
  int64_t num_hdemo_ = 0;
  int64_t num_addresses_ = 0;
  int64_t num_items_ = 0;
  int64_t num_promotions_ = 0;
  int64_t num_reasons_ = 0;
  int64_t num_stores_ = 0;
  int64_t num_call_centers_ = 0;
  int64_t num_catalog_pages_ = 0;
  int64_t num_web_sites_ = 0;
  int64_t num_web_pages_ = 0;
  int64_t num_ship_modes_ = 0;
  int64_t num_warehouses_ = 0;
  uint64_t items_seed_ = 0;
};

/// TableGenerator adapter exposing one side (sales or returns) of a
/// channel through the single-sink interface.
class SalesChannelGenerator : public TableGenerator {
 public:
  SalesChannelGenerator(const GeneratorOptions& options,
                        const std::string& channel, bool emit_sales,
                        bool emit_returns)
      : TableGenerator(options, emit_sales
                                    ? std::string(SpecFor(channel).sales_table)
                                    : channel + "_returns"),
        channel_(channel),
        emit_sales_(emit_sales),
        emit_returns_(emit_returns),
        core_(options, SpecFor(channel), SalesOverrides{}) {}

  int64_t NumUnits() const override { return core_.num_tickets(); }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    return core_.Generate(first, count, emit_sales_ ? sink : nullptr,
                          emit_returns_ ? sink : nullptr);
  }

 private:
  std::string channel_;
  bool emit_sales_;
  bool emit_returns_;
  SalesChannelCore core_;
};

}  // namespace

std::unique_ptr<TableGenerator> MakeSalesChannel(
    const GeneratorOptions& options, const std::string& channel,
    bool emit_sales, bool emit_returns) {
  return std::make_unique<SalesChannelGenerator>(options, channel,
                                                 emit_sales, emit_returns);
}

Status GenerateChannelBoth(const GeneratorOptions& options,
                           const std::string& channel, int64_t first,
                           int64_t count, RowSink* sales_sink,
                           RowSink* returns_sink) {
  SalesChannelCore core(options, SpecFor(channel), SalesOverrides{});
  return core.Generate(first, count, sales_sink, returns_sink);
}

Status GenerateChannelWithOverrides(const GeneratorOptions& options,
                                    const std::string& channel,
                                    int64_t first, int64_t count,
                                    const SalesOverrides& overrides,
                                    RowSink* sales_sink,
                                    RowSink* returns_sink) {
  SalesChannelCore core(options, SpecFor(channel), overrides);
  return core.Generate(first, count, sales_sink, returns_sink);
}

int64_t ChannelNumUnits(const GeneratorOptions& options,
                        const std::string& channel) {
  SalesChannelCore core(options, SpecFor(channel), SalesOverrides{});
  return core.num_tickets();
}

}  // namespace internal_dsgen
}  // namespace tpcds
