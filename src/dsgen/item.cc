// Generator for the item dimension: a history-keeping SCD whose attributes
// follow the single-inheritance hierarchy brand -> class -> category
// (paper Fig. 5, §3.3.1-3.3.2).
//
// Attributes that identify the product (item_id, hierarchy position,
// manufacturer, physical attributes) are generated from business-key-seeded
// draws so all revisions of a business key agree on them; attributes that
// evolve (price, description, manager) draw from surrogate-indexed streams.

#include <algorithm>
#include <cmath>

#include "dist/domains.h"
#include "dsgen/column_stream.h"
#include "dsgen/generator.h"
#include "dsgen/generators_internal.h"
#include "dsgen/keys.h"
#include "dsgen/render.h"
#include "dsgen/scd.h"
#include "scaling/scaling.h"
#include "util/string_util.h"

namespace tpcds {
namespace internal_dsgen {
namespace {

/// Gaussian word selection (paper §3.2): indexes cluster around the front
/// of the word list, so common words recur across generated text.
const std::string& GaussianWord(RngStream* rng) {
  const Distribution& words = domains::Words();
  double g = std::abs(rng->Gaussian());
  size_t idx = static_cast<size_t>(g / 3.0 * static_cast<double>(words.size()));
  return words.value(std::min(idx, words.size() - 1));
}

std::string MakeSentence(RngStream* rng, int num_words) {
  std::string out;
  for (int i = 0; i < num_words; ++i) {
    if (i > 0) out += ' ';
    out += GaussianWord(rng);
  }
  return out;
}

class ItemGenerator : public TableGenerator {
 public:
  explicit ItemGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "item"),
        revisions_(DeriveSeed(options.master_seed, kTidItem, 0),
                   ScalingModel::RowCount("item", options.scale_factor)) {}

  int64_t NumUnits() const override { return revisions_.surrogate_rows(); }

  const RevisionMap& revisions() const { return revisions_; }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    // Business-key streams: stable across revisions.
    ColumnStream bk_stream(options().master_seed, kTidItem, 1, 12);
    // Surrogate streams: change per revision. Descriptions take up to 20
    // Gaussian draws.
    ColumnStream rev_stream(options().master_seed, kTidItem, 2, 8);
    ColumnStream desc_stream(options().master_seed, kTidItem, 3, 24);
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      const RevisionMap::Entry& e = revisions_.At(i);
      bk_stream.BeginRow(e.business_key);
      rev_stream.BeginRow(i);
      desc_stream.BeginRow(i);
      RngStream* bk = bk_stream.rng();
      RngStream* rev = rev_stream.rng();

      // --- stable product identity (from the business-key stream) -------
      const Distribution& categories = domains::Categories();
      int cat_idx = static_cast<int>(categories.PickUniformIndex(bk));
      const Distribution& classes = domains::ClassesOf(cat_idx);
      int class_idx = static_cast<int>(classes.PickUniformIndex(bk));
      int brand_num = static_cast<int>(bk->UniformInt(1, 10));
      int manufact_id = static_cast<int>(bk->UniformInt(1, 1000));
      const Distribution& syl = domains::BrandSyllables();
      std::string manufact = syl.value(static_cast<size_t>(manufact_id) %
                                       syl.size()) +
                             syl.value(static_cast<size_t>(manufact_id / 10) %
                                       syl.size());
      std::string brand = manufact + StringPrintf(" #%d", brand_num);
      std::string size = domains::Sizes().PickUniform(bk);
      std::string color = domains::Colors().PickUniform(bk);
      std::string units = domains::Units().PickUniform(bk);
      std::string container = domains::Containers().PickUniform(bk);
      std::string product_name = MakeSentence(bk, 3);

      // --- per-revision attributes --------------------------------------
      Decimal price = Decimal::FromCents(rev->UniformInt(9, 9999));
      Decimal wholesale =
          price.MultipliedBy(0.25 + rev->NextDouble() * 0.65);
      int manager_id = static_cast<int>(rev->UniformInt(1, 100));
      int formulation_code = static_cast<int>(rev->UniformInt(0, 99999999));
      int desc_words = static_cast<int>(rev->UniformInt(5, 18));
      std::string desc = MakeSentence(desc_stream.rng(), desc_words);

      RevisionWindow window = RevisionValidity(e.revision, e.num_revisions);

      row.Reset(22);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(e.business_key)));
      row.AddDate(window.rec_begin_date);
      row.AddDate(window.rec_end_date);
      row.AddString(desc);
      row.AddDecimal(price);
      row.AddDecimal(wholesale);
      row.AddInt((cat_idx + 1) * 100000 + (class_idx + 1) * 1000 + brand_num);
      row.AddString(brand);
      row.AddInt((cat_idx + 1) * 100 + class_idx + 1);
      row.AddString(classes.value(static_cast<size_t>(class_idx)));
      row.AddInt(cat_idx + 1);
      row.AddString(categories.value(static_cast<size_t>(cat_idx)));
      row.AddInt(manufact_id);
      row.AddString(manufact);
      row.AddString(size);
      row.AddString(StringPrintf("%08d", formulation_code));
      row.AddString(color);
      row.AddString(units);
      row.AddString(container);
      row.AddInt(manager_id);
      row.AddString(product_name);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  RevisionMap revisions_;
};

}  // namespace

std::unique_ptr<TableGenerator> MakeItem(const GeneratorOptions& o) {
  return std::make_unique<ItemGenerator>(o);
}

}  // namespace internal_dsgen
}  // namespace tpcds
