// Generators for the business-side dimensions: store, warehouse,
// promotion, call_center, catalog_page, web_page and web_site. The
// history-keeping ones (store, call_center, web_page, web_site) use the
// SCD revision machinery (paper §3.3.2).

#include <algorithm>
#include <cmath>

#include "dist/domains.h"
#include "dsgen/address.h"
#include "dsgen/column_stream.h"
#include "dsgen/generator.h"
#include "dsgen/generators_internal.h"
#include "dsgen/keys.h"
#include "dsgen/render.h"
#include "dsgen/scd.h"
#include "scaling/scaling.h"
#include "util/string_util.h"

namespace tpcds {
namespace internal_dsgen {
namespace {

std::string PersonName(RngStream* rng) {
  std::string name = domains::FirstNames().PickWeighted(rng);
  name += ' ';
  name += domains::LastNames().PickWeighted(rng);
  return name;
}

std::string WordPhrase(RngStream* rng, int num_words) {
  const Distribution& words = domains::Words();
  std::string out;
  for (int i = 0; i < num_words; ++i) {
    if (i > 0) out += ' ';
    out += words.PickUniform(rng);
  }
  return out;
}

class StoreGenerator : public TableGenerator {
 public:
  explicit StoreGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "store"),
        revisions_(DeriveSeed(options.master_seed, kTidStore, 0),
                   ScalingModel::RowCount("store", options.scale_factor)) {}

  int64_t NumUnits() const override { return revisions_.surrogate_rows(); }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream bk_stream(options().master_seed, kTidStore, 1,
                           kAddressDraws + 6);
    ColumnStream rev_stream(options().master_seed, kTidStore, 2, 16);
    RowBuilder row;
    // Domain scaling (paper §3.1): stores draw counties from a domain
    // proportional to the store count, not the full county domain.
    int64_t county_domain =
        std::clamp<int64_t>(revisions_.num_business_keys(), 10, 1800);
    for (int64_t i = first; i < first + count; ++i) {
      const RevisionMap::Entry& e = revisions_.At(i);
      bk_stream.BeginRow(e.business_key);
      rev_stream.BeginRow(i);
      RngStream* bk = bk_stream.rng();
      RngStream* rev = rev_stream.rng();

      // Stable: location and identity.
      Address addr = MakeAddress(bk, county_domain);
      std::string name = WordPhrase(bk, 1);
      int market_id = static_cast<int>(bk->UniformInt(1, 10));
      int company_id = static_cast<int>(bk->UniformInt(1, 5));

      // Per revision: staffing, size, management.
      int employees = static_cast<int>(rev->UniformInt(200, 300));
      int floor_space = static_cast<int>(rev->UniformInt(5000000, 10000000));
      const char* hours = rev->NextDouble() < 0.5 ? "8AM-8PM" : "8AM-10PM";
      std::string manager = PersonName(rev);
      std::string market_desc = WordPhrase(rev, 6);
      std::string market_manager = PersonName(rev);
      bool closed = rev->NextDouble() < 0.1;
      Decimal tax = Decimal::FromCents(rev->UniformInt(0, 1100));

      RevisionWindow window = RevisionValidity(e.revision, e.num_revisions);

      row.Reset(29);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(e.business_key)));
      row.AddDate(window.rec_begin_date);
      row.AddDate(window.rec_end_date);
      row.AddKey(closed ? DateToSk(Date::FromYmd(2001, 3, 13)) : 0);
      row.AddString(name);
      row.AddInt(employees);
      row.AddInt(floor_space);
      row.AddString(hours);
      row.AddString(manager);
      row.AddInt(market_id);
      row.AddString("Unknown");  // s_geography_class
      row.AddString(market_desc);
      row.AddString(market_manager);
      row.AddInt(1);
      row.AddString("Unknown");  // s_division_name
      row.AddInt(company_id);
      row.AddString("Unknown");  // s_company_name
      row.AddString(addr.street_number);
      row.AddString(addr.street_name);
      row.AddString(addr.street_type);
      row.AddString(addr.suite_number);
      row.AddString(addr.city);
      row.AddString(addr.county);
      row.AddString(addr.state);
      row.AddString(addr.zip);
      row.AddString(addr.country);
      row.AddDecimal(addr.gmt_offset);
      row.AddDecimal(tax);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  RevisionMap revisions_;
};

class WarehouseGenerator : public TableGenerator {
 public:
  explicit WarehouseGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "warehouse") {}

  int64_t NumUnits() const override {
    return ScalingModel::RowCount("warehouse", sf());
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream stream(options().master_seed, kTidWarehouse, 1,
                        kAddressDraws + 4);
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      stream.BeginRow(i);
      RngStream* rng = stream.rng();
      Address addr = MakeAddress(rng, 0);
      std::string name = WordPhrase(rng, 2);
      int sq_ft = static_cast<int>(rng->UniformInt(50000, 1000000));
      row.Reset(14);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(i + 1)));
      row.AddString(name);
      row.AddInt(sq_ft);
      row.AddString(addr.street_number);
      row.AddString(addr.street_name);
      row.AddString(addr.street_type);
      row.AddString(addr.suite_number);
      row.AddString(addr.city);
      row.AddString(addr.county);
      row.AddString(addr.state);
      row.AddString(addr.zip);
      row.AddString(addr.country);
      row.AddDecimal(addr.gmt_offset);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

class PromotionGenerator : public TableGenerator {
 public:
  explicit PromotionGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "promotion"),
        num_items_(ScalingModel::RowCount("item", sf())) {}

  int64_t NumUnits() const override {
    return ScalingModel::RowCount("promotion", sf());
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream stream(options().master_seed, kTidPromotion, 1, 24);
    RowBuilder row;
    Date begin = ScalingModel::SalesBeginDate();
    int32_t window = ScalingModel::SalesEndDate() - begin;
    for (int64_t i = first; i < first + count; ++i) {
      stream.BeginRow(i);
      RngStream* rng = stream.rng();
      Date start = begin.AddDays(static_cast<int>(
          rng->UniformInt(0, window)));
      Date end = start.AddDays(static_cast<int>(rng->UniformInt(15, 90)));
      int64_t item = rng->UniformInt(1, num_items_);
      Decimal cost = Decimal::FromUnits(1000);
      std::string name = WordPhrase(rng, 1);
      // Eight channel flags + details + purpose + discount-active.
      bool channels[8];
      for (bool& c : channels) c = rng->NextDouble() < 0.5;
      std::string details = WordPhrase(rng, 8);
      bool discount_active = rng->NextDouble() < 0.5;

      row.Reset(19);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(i + 1)));
      row.AddKey(DateToSk(start));
      row.AddKey(DateToSk(end));
      row.AddKey(item);
      row.AddDecimal(cost);
      row.AddInt(1);  // p_response_target
      row.AddString(name);
      for (bool c : channels) row.AddFlag(c);
      row.AddString(details);
      row.AddString(domains::PromoPurposes().PickUniform(rng));
      row.AddFlag(discount_active);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  int64_t num_items_;
};

class CallCenterGenerator : public TableGenerator {
 public:
  explicit CallCenterGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "call_center"),
        revisions_(DeriveSeed(options.master_seed, kTidCallCenter, 0),
                   ScalingModel::RowCount("call_center",
                                          options.scale_factor)) {}

  int64_t NumUnits() const override { return revisions_.surrogate_rows(); }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream bk_stream(options().master_seed, kTidCallCenter, 1,
                           kAddressDraws + 6);
    ColumnStream rev_stream(options().master_seed, kTidCallCenter, 2, 24);
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      const RevisionMap::Entry& e = revisions_.At(i);
      bk_stream.BeginRow(e.business_key);
      rev_stream.BeginRow(i);
      RngStream* bk = bk_stream.rng();
      RngStream* rev = rev_stream.rng();

      Address addr = MakeAddress(bk, 0);
      std::string name = StringPrintf(
          "%s_%d", WordPhrase(bk, 1).c_str(),
          static_cast<int>(e.business_key));
      Date open =
          Date::FromYmd(1990, 1, 1)
              .AddDays(static_cast<int>(bk->UniformInt(0, 2000)));

      std::string cc_class = domains::CallCenterClasses().PickUniform(rev);
      int employees = static_cast<int>(rev->UniformInt(2000, 700000));
      int sq_ft = static_cast<int>(rev->UniformInt(100000, 4000000));
      std::string hours = domains::CallCenterHours().PickUniform(rev);
      std::string manager = PersonName(rev);
      int mkt_id = static_cast<int>(rev->UniformInt(1, 6));
      std::string mkt_class = domains::MarketClasses().PickUniform(rev);
      std::string mkt_desc = WordPhrase(rev, 6);
      std::string market_manager = PersonName(rev);
      int division = static_cast<int>(rev->UniformInt(1, 6));
      std::string division_name = WordPhrase(rev, 1);
      int company = static_cast<int>(rev->UniformInt(1, 6));
      std::string company_name = WordPhrase(rev, 1);
      Decimal tax = Decimal::FromCents(rev->UniformInt(0, 1200));

      RevisionWindow window = RevisionValidity(e.revision, e.num_revisions);

      row.Reset(31);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(e.business_key)));
      row.AddDate(window.rec_begin_date);
      row.AddDate(window.rec_end_date);
      row.AddKey(0);  // cc_closed_date_sk: open centers
      row.AddKey(DateToSk(open));
      row.AddString(name);
      row.AddString(cc_class);
      row.AddInt(employees);
      row.AddInt(sq_ft);
      row.AddString(hours);
      row.AddString(manager);
      row.AddInt(mkt_id);
      row.AddString(mkt_class);
      row.AddString(mkt_desc);
      row.AddString(market_manager);
      row.AddInt(division);
      row.AddString(division_name);
      row.AddInt(company);
      row.AddString(company_name);
      row.AddString(addr.street_number);
      row.AddString(addr.street_name);
      row.AddString(addr.street_type);
      row.AddString(addr.suite_number);
      row.AddString(addr.city);
      row.AddString(addr.county);
      row.AddString(addr.state);
      row.AddString(addr.zip);
      row.AddString(addr.country);
      row.AddDecimal(addr.gmt_offset);
      row.AddDecimal(tax);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  RevisionMap revisions_;
};

class CatalogPageGenerator : public TableGenerator {
 public:
  explicit CatalogPageGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "catalog_page") {}

  int64_t NumUnits() const override {
    return ScalingModel::RowCount("catalog_page", sf());
  }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream stream(options().master_seed, kTidCatalogPage, 1, 24);
    RowBuilder row;
    // Catalogs are quarterly; each catalog has a fixed page budget.
    constexpr int kPagesPerCatalog = 108;
    Date first_catalog = Date::FromYmd(1998, 1, 1);
    for (int64_t i = first; i < first + count; ++i) {
      stream.BeginRow(i);
      RngStream* rng = stream.rng();
      int64_t catalog_number = i / kPagesPerCatalog + 1;
      int64_t page_number = i % kPagesPerCatalog + 1;
      Date start = first_catalog.AddDays(
          static_cast<int>((catalog_number - 1) * 91));
      Date end = start.AddDays(90);
      std::string desc = WordPhrase(rng, 8);
      row.Reset(9);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(i + 1)));
      row.AddKey(DateToSk(start));
      row.AddKey(DateToSk(end));
      row.AddString(domains::Departments().PickUniform(rng));
      row.AddInt(catalog_number);
      row.AddInt(page_number);
      row.AddString(desc);
      row.AddString(domains::CatalogPageTypes().PickUniform(rng));
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }
};

class WebPageGenerator : public TableGenerator {
 public:
  explicit WebPageGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "web_page"),
        revisions_(DeriveSeed(options.master_seed, kTidWebPage, 0),
                   ScalingModel::RowCount("web_page", options.scale_factor)),
        num_customers_(ScalingModel::RowCount("customer",
                                              options.scale_factor)) {}

  int64_t NumUnits() const override { return revisions_.surrogate_rows(); }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream bk_stream(options().master_seed, kTidWebPage, 1, 4);
    ColumnStream rev_stream(options().master_seed, kTidWebPage, 2, 12);
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      const RevisionMap::Entry& e = revisions_.At(i);
      bk_stream.BeginRow(e.business_key);
      rev_stream.BeginRow(i);
      RngStream* bk = bk_stream.rng();
      RngStream* rev = rev_stream.rng();

      Date creation =
          Date::FromYmd(1997, 1, 1)
              .AddDays(static_cast<int>(bk->UniformInt(0, 1500)));
      bool autogen = bk->NextDouble() < 0.3;

      Date access = creation.AddDays(
          static_cast<int>(rev->UniformInt(1, 100)));
      // Autogenerated pages belong to a customer.
      int64_t customer =
          autogen ? rev->UniformInt(1, num_customers_) : 0;
      if (!autogen) rev->NextUint64();  // keep the draw budget aligned
      std::string type = domains::WebPageTypes().PickUniform(rev);
      int char_count = static_cast<int>(rev->UniformInt(100, 8000));
      int link_count = static_cast<int>(rev->UniformInt(2, 25));
      int image_count = static_cast<int>(rev->UniformInt(1, 7));
      int max_ad_count = static_cast<int>(rev->UniformInt(0, 4));

      RevisionWindow window = RevisionValidity(e.revision, e.num_revisions);

      row.Reset(14);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(e.business_key)));
      row.AddDate(window.rec_begin_date);
      row.AddDate(window.rec_end_date);
      row.AddKey(DateToSk(creation));
      row.AddKey(DateToSk(access));
      row.AddFlag(autogen);
      row.AddKey(customer);
      row.AddString(StringPrintf("http://www.foo.com/page_%lld.html",
                                 static_cast<long long>(e.business_key)));
      row.AddString(type);
      row.AddInt(char_count);
      row.AddInt(link_count);
      row.AddInt(image_count);
      row.AddInt(max_ad_count);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  RevisionMap revisions_;
  int64_t num_customers_;
};

class WebSiteGenerator : public TableGenerator {
 public:
  explicit WebSiteGenerator(const GeneratorOptions& options)
      : TableGenerator(options, "web_site"),
        revisions_(DeriveSeed(options.master_seed, kTidWebSite, 0),
                   ScalingModel::RowCount("web_site",
                                          options.scale_factor)) {}

  int64_t NumUnits() const override { return revisions_.surrogate_rows(); }

  Status GenerateUnits(int64_t first, int64_t count,
                       RowSink* sink) override {
    ColumnStream bk_stream(options().master_seed, kTidWebSite, 1,
                           kAddressDraws + 4);
    ColumnStream rev_stream(options().master_seed, kTidWebSite, 2, 20);
    RowBuilder row;
    for (int64_t i = first; i < first + count; ++i) {
      const RevisionMap::Entry& e = revisions_.At(i);
      bk_stream.BeginRow(e.business_key);
      rev_stream.BeginRow(i);
      RngStream* bk = bk_stream.rng();
      RngStream* rev = rev_stream.rng();

      Address addr = MakeAddress(bk, 0);
      std::string name = StringPrintf(
          "site_%d", static_cast<int>(e.business_key));
      Date open = Date::FromYmd(1996, 1, 1)
                      .AddDays(static_cast<int>(bk->UniformInt(0, 1200)));

      std::string site_class = WordPhrase(rev, 1);
      std::string manager = PersonName(rev);
      int mkt_id = static_cast<int>(rev->UniformInt(1, 6));
      std::string mkt_class = domains::MarketClasses().PickUniform(rev);
      std::string mkt_desc = WordPhrase(rev, 6);
      std::string market_manager = PersonName(rev);
      int company_id = static_cast<int>(rev->UniformInt(1, 6));
      std::string company_name = WordPhrase(rev, 1);
      Decimal tax = Decimal::FromCents(rev->UniformInt(0, 1200));

      RevisionWindow window = RevisionValidity(e.revision, e.num_revisions);

      row.Reset(26);
      row.AddKey(i + 1);
      row.AddString(BusinessKey(static_cast<uint64_t>(e.business_key)));
      row.AddDate(window.rec_begin_date);
      row.AddDate(window.rec_end_date);
      row.AddString(name);
      row.AddKey(DateToSk(open));
      row.AddKey(0);  // web_close_date_sk: all sites open
      row.AddString(site_class);
      row.AddString(manager);
      row.AddInt(mkt_id);
      row.AddString(mkt_class);
      row.AddString(mkt_desc);
      row.AddString(market_manager);
      row.AddInt(company_id);
      row.AddString(company_name);
      row.AddString(addr.street_number);
      row.AddString(addr.street_name);
      row.AddString(addr.street_type);
      row.AddString(addr.suite_number);
      row.AddString(addr.city);
      row.AddString(addr.county);
      row.AddString(addr.state);
      row.AddString(addr.zip);
      row.AddString(addr.country);
      row.AddDecimal(addr.gmt_offset);
      row.AddDecimal(tax);
      TPCDS_RETURN_NOT_OK(sink->Append(row.fields()));
    }
    return Status::OK();
  }

 private:
  RevisionMap revisions_;
};

}  // namespace

std::unique_ptr<TableGenerator> MakeStore(const GeneratorOptions& o) {
  return std::make_unique<StoreGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeWarehouse(const GeneratorOptions& o) {
  return std::make_unique<WarehouseGenerator>(o);
}
std::unique_ptr<TableGenerator> MakePromotion(const GeneratorOptions& o) {
  return std::make_unique<PromotionGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeCallCenter(const GeneratorOptions& o) {
  return std::make_unique<CallCenterGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeCatalogPage(const GeneratorOptions& o) {
  return std::make_unique<CatalogPageGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeWebPage(const GeneratorOptions& o) {
  return std::make_unique<WebPageGenerator>(o);
}
std::unique_ptr<TableGenerator> MakeWebSite(const GeneratorOptions& o) {
  return std::make_unique<WebSiteGenerator>(o);
}

}  // namespace internal_dsgen
}  // namespace tpcds
