#include "dsgen/address.h"

#include <algorithm>

#include "dist/domains.h"
#include "util/string_util.h"

namespace tpcds {

Address MakeAddress(RngStream* rng, int64_t county_domain) {
  Address a;
  // Exactly kAddressDraws draws, in a fixed order.
  a.street_number = std::to_string(rng->UniformInt(1, 1000));         // 1
  a.street_name = domains::StreetNames().PickUniform(rng);            // 2
  // Two-word street names appear with ~30% likelihood.
  if (rng->NextDouble() < 0.3) {                                      // 3
    a.street_name += " " + domains::StreetNames().PickUniform(rng);   // 4
  } else {
    rng->NextUint64();  // burn the unused draw to keep the budget fixed
  }
  a.street_type = domains::StreetTypes().PickWeighted(rng);           // 5
  int64_t suite = rng->UniformInt(0, 99);                             // 6
  a.suite_number =
      StringPrintf("Suite %s", suite % 2 == 0
                                   ? std::to_string(suite).c_str()
                                   : (std::string(1, static_cast<char>(
                                          'A' + suite % 26)))
                                         .c_str());
  a.city = domains::Cities().PickWeighted(rng);                       // 7
  const Distribution& counties = domains::Counties();
  int64_t domain = county_domain > 0
                       ? std::min<int64_t>(county_domain,
                                           static_cast<int64_t>(
                                               counties.size()))
                       : static_cast<int64_t>(counties.size());
  a.county = counties.value(
      static_cast<size_t>(rng->UniformInt(0, domain - 1)));           // 8
  a.state = domains::States().PickWeighted(rng);                      // 9
  a.zip = StringPrintf("%05d", static_cast<int>(rng->UniformInt(0, 99999)));
  a.country = "United States";                                        // 10
  // Offset derives from the state draw, not an extra RNG draw.
  int band = static_cast<int>(a.state[0] + a.state[1]) % 4;
  a.gmt_offset = Decimal::FromUnits(-5 - band);
  return a;
}

}  // namespace tpcds
