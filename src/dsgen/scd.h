#ifndef TPCDS_DSGEN_SCD_H_
#define TPCDS_DSGEN_SCD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/date.h"
#include "util/random.h"

namespace tpcds {

/// Slowly-changing-dimension support (paper §3.3.2).
///
/// A history-keeping dimension's surrogate rows are revisions of a smaller
/// set of business keys: each business key carries 1..3 revisions (the
/// paper: "up to 3 revisions of any dimension entry" in the initial load,
/// reflecting the effects of previous data-maintenance operations), chosen
/// deterministically from the seed so generation can be chunked.
class RevisionMap {
 public:
  struct Entry {
    int64_t business_key;  // 1-based
    int revision;          // 0-based within the business key
    int num_revisions;     // total revisions of this business key
  };

  /// Distributes exactly `surrogate_rows` revisions over business keys.
  RevisionMap(uint64_t seed, int64_t surrogate_rows);

  int64_t surrogate_rows() const {
    return static_cast<int64_t>(entries_.size());
  }
  int64_t num_business_keys() const { return num_business_keys_; }

  /// Mapping for the 0-based surrogate row index.
  const Entry& At(int64_t surrogate_index) const {
    return entries_[static_cast<size_t>(surrogate_index)];
  }

 private:
  std::vector<Entry> entries_;
  int64_t num_business_keys_ = 0;
};

/// Validity window of revision `revision` out of `num_revisions` for a
/// history-keeping dimension row. Windows tile the pre-benchmark era with
/// fixed split dates (so the initial load is identical across runs); the
/// final revision is open-ended.
struct RevisionWindow {
  Date rec_begin_date;
  std::optional<Date> rec_end_date;  // nullopt = current revision
};
RevisionWindow RevisionValidity(int revision, int num_revisions);

}  // namespace tpcds

#endif  // TPCDS_DSGEN_SCD_H_
