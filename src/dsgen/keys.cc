#include "dsgen/keys.h"

#include "scaling/scaling.h"

namespace tpcds {

std::string BusinessKey(uint64_t index) {
  std::string key(16, 'A');
  size_t pos = 8;
  while (index > 0 && pos < key.size()) {
    key[pos++] = static_cast<char>('A' + index % 26);
    index /= 26;
  }
  return key;
}

int64_t DateToSk(Date date) {
  return date - ScalingModel::DateDimBeginDate() + 1;
}

Date SkToDate(int64_t sk) {
  return ScalingModel::DateDimBeginDate().AddDays(static_cast<int>(sk - 1));
}

int64_t SecondsToTimeSk(int seconds_since_midnight) {
  return seconds_since_midnight + 1;
}

}  // namespace tpcds
