#ifndef TPCDS_MAINTENANCE_MAINTENANCE_H_
#define TPCDS_MAINTENANCE_MAINTENANCE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/data_facade.h"
#include "engine/database.h"
#include "engine/recovery.h"
#include "util/result.h"
#include "util/wal.h"

namespace tpcds {

/// Configuration of one data-maintenance run (the paper's ETL workload,
/// §4.2): a refresh set sized as a fraction of the initial population,
/// applied as dimension updates plus clustered fact inserts and deletes.
struct MaintenanceOptions {
  uint64_t seed = 19620718;
  double scale_factor = 1.0;
  /// Which refresh cycle this is (the benchmark's DM run is cycle 1;
  /// repeated cycles produce disjoint refresh sets).
  int refresh_cycle = 1;
  /// Refresh volume as a fraction of the initial fact population.
  double refresh_fraction = 0.01;
  /// Rows updated per maintained dimension.
  int64_t dimension_updates = 100;
  /// When non-empty, only the named operations run (names as reported in
  /// MaintenanceOpResult, e.g. "scd_update:item"). Recovery tests use this
  /// to re-apply exactly the committed prefix of a crashed run.
  std::vector<std::string> operations;
};

/// Outcome of one maintenance operation, for reporting and the metric.
struct MaintenanceOpResult {
  std::string operation;
  int64_t rows_affected = 0;
  double seconds = 0.0;
};

struct MaintenanceReport {
  std::vector<MaintenanceOpResult> operations;
  double TotalSeconds() const;
  int64_t TotalRows() const;
};

/// Runs the full 12-operation data-maintenance workload against `db`:
///
///   1-3   history-keeping SCD updates: item, store, web_site (Fig. 9)
///   4-6   non-history SCD updates: customer, customer_address, promotion
///         (Fig. 8)
///   7-9   clustered fact inserts per channel with business-key to
///         surrogate-key translation (Fig. 10)
///   10-12 clustered fact range-deletes per channel
///
/// All mutations flow through a WalSession. Without a writer (`wal` null),
/// the run is atomic as a whole: any failure rolls every operation back
/// via the in-memory undo log (O(changed rows), not whole-table clones)
/// and clears the report. With a writer attached, each operation commits
/// individually — a failure undoes only the broken operation's tail, the
/// committed prefix stays both in memory and in the log, and the report
/// keeps the committed operations; crash recovery replays exactly those.
Status RunDataMaintenance(Database* db, const MaintenanceOptions& options,
                          MaintenanceReport* report,
                          WalWriter* wal = nullptr);

/// The twelve tables the maintenance workload mutates (six dimensions,
/// six fact tables). Copy-on-write generation builds clone exactly these.
const std::vector<std::string>& MaintainedTables();

/// Generation-based variant of RunDataMaintenance: forks a copy-on-write
/// build generation (cloning only MaintainedTables(); all other tables are
/// shared by reference), applies the full 12-operation workload to the
/// fork, and publishes the result back into `db` with one atomic
/// generation swap. Queries running concurrently against a previously
/// acquired DataFacade keep reading the old generation untouched; the old
/// tables are retired when the last such reader drains its shared_ptr.
///
/// Commit semantics mirror the in-place path: without a WAL the swap only
/// happens when every operation succeeded (a failure discards the fork —
/// `db` never sees partial state, no undo needed). With a WAL attached the
/// committed prefix is published even on failure, matching what crash
/// recovery replays. When `provider` is non-null, the new generation's
/// snapshot is published to it after the swap.
Status RunMaintenanceGeneration(Database* db,
                                const MaintenanceOptions& options,
                                MaintenanceReport* report,
                                WalWriter* wal = nullptr,
                                DataFacadeProvider* provider = nullptr);

/// Outcome of a read/refresh duty cycle (RunRefreshDutyCycle).
struct DutyCycleReport {
  int cycles_attempted = 0;
  /// Cycles whose generation build failed (e.g. a fault window fired
  /// mid-build); without a WAL the fork is discarded and the published
  /// state is untouched, with a WAL the committed prefix is published.
  int cycles_failed = 0;
  /// Error text of each failed cycle, in order.
  std::vector<std::string> errors;
  /// Per-operation results of every committed operation across cycles.
  MaintenanceReport operations;
};

/// The read/refresh duty cycle of a workload profile: fires
/// RunMaintenanceGeneration every `period_ms` (first firing after one
/// period) while concurrent query streams stay live through the
/// provider's facade swaps. Each firing advances options.refresh_cycle
/// from base_options.refresh_cycle, so cycles touch disjoint refresh
/// sets. Runs at most `cycles` firings (>= 1), stopping early when
/// `stop` (optional) becomes true between firings. Cycle failures are
/// recorded in the report, not returned: a chaos drill wants the crashed
/// cycle AND the cycles after it.
Status RunRefreshDutyCycle(Database* db,
                           const MaintenanceOptions& base_options,
                           int cycles, double period_ms,
                           DutyCycleReport* report, WalWriter* wal = nullptr,
                           DataFacadeProvider* provider = nullptr,
                           const std::atomic<bool>* stop = nullptr);

// --- individual operations (exposed for unit tests) ----------------------
// Each accepts an optional WalSession; when omitted, mutations apply
// directly (a private in-memory session) with no rollback capability.

/// Fig. 9: for each updated business key, close the open revision (set
/// rec_end_date) and insert a new open revision. Returns rows touched
/// (closed + inserted).
Result<int64_t> UpdateHistoryKeepingDimension(Database* db,
                                              const std::string& table,
                                              int64_t num_updates,
                                              uint64_t seed,
                                              WalSession* wal = nullptr);

/// Fig. 8: find each business key's row and overwrite changeable
/// attributes in place. Returns rows updated.
Result<int64_t> UpdateNonHistoryDimension(Database* db,
                                          const std::string& table,
                                          int64_t num_updates, uint64_t seed,
                                          WalSession* wal = nullptr);

/// Fig. 10: insert freshly generated fact rows for `channel`
/// ("store"/"catalog"/"web"), clustered in a refresh date window, with the
/// update file carrying business keys that are translated to surrogate
/// keys through the dimensions. Returns rows inserted (sales + returns).
Result<int64_t> InsertFactRefresh(Database* db, const std::string& channel,
                                  const MaintenanceOptions& options,
                                  WalSession* wal = nullptr);

/// Deletes fact rows of `channel` whose sale date falls in the refresh
/// window preceding the inserted one — the clustered-by-date delete that
/// models dropping a partition. Returns rows deleted (sales + returns).
Result<int64_t> DeleteFactRange(Database* db, const std::string& channel,
                                const MaintenanceOptions& options,
                                WalSession* wal = nullptr);

/// The refresh window (begin, end date) of a given cycle: one week per
/// cycle, walking backwards from the end of the 5-year sales window.
std::pair<Date, Date> RefreshWindow(int refresh_cycle);

}  // namespace tpcds

#endif  // TPCDS_MAINTENANCE_MAINTENANCE_H_
