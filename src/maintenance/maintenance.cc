#include "maintenance/maintenance.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <thread>
#include <unordered_set>

#include "dsgen/generators_internal.h"
#include "dsgen/keys.h"
#include "schema/schema.h"
#include "scaling/scaling.h"
#include "util/fault.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// Per-dimension maintenance metadata: the business-key column and, for
/// history-keeping dimensions, the revision-validity columns.
struct DimensionSpec {
  const char* business_key;
  const char* rec_start;  // nullptr for non-history dimensions
  const char* rec_end;
};

Result<DimensionSpec> SpecForDimension(const std::string& table) {
  if (table == "item") return DimensionSpec{"i_item_id", "i_rec_start_date",
                                            "i_rec_end_date"};
  if (table == "store") return DimensionSpec{"s_store_id", "s_rec_start_date",
                                             "s_rec_end_date"};
  if (table == "web_site") {
    return DimensionSpec{"web_site_id", "web_rec_start_date",
                         "web_rec_end_date"};
  }
  if (table == "call_center") {
    return DimensionSpec{"cc_call_center_id", "cc_rec_start_date",
                         "cc_rec_end_date"};
  }
  if (table == "web_page") {
    return DimensionSpec{"wp_web_page_id", "wp_rec_start_date",
                         "wp_rec_end_date"};
  }
  if (table == "customer") return DimensionSpec{"c_customer_id", nullptr,
                                                nullptr};
  if (table == "customer_address") {
    return DimensionSpec{"ca_address_id", nullptr, nullptr};
  }
  if (table == "promotion") return DimensionSpec{"p_promo_id", nullptr,
                                                 nullptr};
  return Status::InvalidArgument("no maintenance spec for " + table);
}

/// Deterministically selects `want` distinct business keys of `table`.
Result<std::vector<std::string>> PickBusinessKeys(EngineTable* table,
                                                  int bk_col, int64_t want,
                                                  uint64_t seed) {
  const EngineTable::StringIndex& index = table->GetOrBuildStringIndex(bk_col);
  std::vector<std::string> keys;
  keys.reserve(index.size());
  for (const auto& [key, rows] : index) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  if (static_cast<int64_t>(keys.size()) <= want) return keys;
  RngStream rng(seed);
  // Partial Fisher-Yates: the first `want` slots become the sample.
  for (int64_t i = 0; i < want; ++i) {
    int64_t j = rng.UniformInt(i, static_cast<int64_t>(keys.size()) - 1);
    std::swap(keys[static_cast<size_t>(i)], keys[static_cast<size_t>(j)]);
  }
  keys.resize(static_cast<size_t>(want));
  return keys;
}

/// The "current date" stamped on revisions created by refresh `cycle`.
Date RefreshDate(int cycle) {
  return ScalingModel::SalesEndDate().AddDays(cycle);
}

/// Mutates the changeable attributes of a dimension row copy. Decimal
/// columns drift by +5%; the mutation is the "changed fields" payload of
/// the update record (Figs. 8/9).
void DriftAttributes(EngineTable* table, std::vector<Value>* row) {
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const EngineTable::ColumnMeta& meta = table->column_meta(c);
    if (meta.type == ColumnType::kDecimal && !(*row)[c].is_null()) {
      (*row)[c] = Value::Dec((*row)[c].AsDecimal().MultipliedBy(1.05));
    }
  }
}

struct ChannelColumns {
  const char* sales_table;
  const char* returns_table;
  const char* sales_item;
  const char* sales_customer;
  const char* sales_date;
  const char* returns_item;
  const char* returns_customer;
};

Result<ChannelColumns> ColumnsForChannel(const std::string& channel) {
  if (channel == "store") {
    return ChannelColumns{"store_sales", "store_returns", "ss_item_sk",
                          "ss_customer_sk", "ss_sold_date_sk", "sr_item_sk",
                          "sr_customer_sk"};
  }
  if (channel == "catalog") {
    return ChannelColumns{"catalog_sales",      "catalog_returns",
                          "cs_item_sk",         "cs_bill_customer_sk",
                          "cs_sold_date_sk",    "cr_item_sk",
                          "cr_refunded_customer_sk"};
  }
  if (channel == "web") {
    return ChannelColumns{"web_sales",       "web_returns",
                          "ws_item_sk",      "ws_bill_customer_sk",
                          "ws_sold_date_sk", "wr_item_sk",
                          "wr_refunded_customer_sk"};
  }
  return Status::InvalidArgument("unknown channel: " + channel);
}

}  // namespace

double MaintenanceReport::TotalSeconds() const {
  double total = 0.0;
  for (const MaintenanceOpResult& op : operations) total += op.seconds;
  return total;
}

int64_t MaintenanceReport::TotalRows() const {
  int64_t total = 0;
  for (const MaintenanceOpResult& op : operations) total += op.rows_affected;
  return total;
}

std::pair<Date, Date> RefreshWindow(int refresh_cycle) {
  Date end = ScalingModel::SalesEndDate().AddDays(-7 * (refresh_cycle - 1));
  Date begin = end.AddDays(-6);
  return {begin, end};
}

Result<int64_t> UpdateHistoryKeepingDimension(Database* db,
                                              const std::string& table_name,
                                              int64_t num_updates,
                                              uint64_t seed,
                                              WalSession* wal) {
  WalSession local(nullptr);
  WalSession* session = wal != nullptr ? wal : &local;
  EngineTable* table = db->FindTable(table_name);
  if (table == nullptr) return Status::NotFound(table_name);
  TPCDS_ASSIGN_OR_RETURN(DimensionSpec spec, SpecForDimension(table_name));
  if (spec.rec_end == nullptr) {
    return Status::InvalidArgument(table_name + " is not history-keeping");
  }
  int bk_col = table->ColumnIndex(spec.business_key);
  int start_col = table->ColumnIndex(spec.rec_start);
  int end_col = table->ColumnIndex(spec.rec_end);
  if (bk_col < 0 || start_col < 0 || end_col < 0) {
    return Status::Internal("maintenance columns missing on " + table_name);
  }

  TPCDS_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                         PickBusinessKeys(table, bk_col, num_updates, seed));
  // Gather the open revision of every picked key *before* mutating: the
  // first SetValue invalidates the index.
  std::vector<int64_t> open_rows;
  open_rows.reserve(keys.size());
  {
    const EngineTable::StringIndex& index =
        table->GetOrBuildStringIndex(bk_col);
    for (const std::string& key : keys) {
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (int64_t row : it->second) {
        if (table->GetValue(row, end_col).is_null()) {
          open_rows.push_back(row);
          break;
        }
      }
    }
  }

  // Fig. 9: close the open revision, insert the successor revision.
  Date today = RefreshDate(1);
  int64_t max_sk = 0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    max_sk = std::max(max_sk, table->GetValue(r, 0).AsInt());
  }
  int64_t touched = 0;
  for (int64_t row : open_rows) {
    std::vector<Value> revision;
    revision.reserve(table->num_columns());
    for (size_t c = 0; c < table->num_columns(); ++c) {
      revision.push_back(table->GetValue(row, static_cast<int>(c)));
    }
    TPCDS_RETURN_NOT_OK(
        session->SetCell(table, row, end_col, Value::Dt(today.AddDays(-1))));
    revision[0] = Value::Int(++max_sk);
    revision[static_cast<size_t>(start_col)] = Value::Dt(today);
    revision[static_cast<size_t>(end_col)] = Value::Null();
    DriftAttributes(table, &revision);
    TPCDS_RETURN_NOT_OK(session->AppendRowValues(table, revision));
    touched += 2;
  }
  return touched;
}

Result<int64_t> UpdateNonHistoryDimension(Database* db,
                                          const std::string& table_name,
                                          int64_t num_updates,
                                          uint64_t seed, WalSession* wal) {
  WalSession local(nullptr);
  WalSession* session = wal != nullptr ? wal : &local;
  EngineTable* table = db->FindTable(table_name);
  if (table == nullptr) return Status::NotFound(table_name);
  TPCDS_ASSIGN_OR_RETURN(DimensionSpec spec, SpecForDimension(table_name));
  int bk_col = table->ColumnIndex(spec.business_key);
  if (bk_col < 0) return Status::Internal("no business key on " + table_name);

  TPCDS_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                         PickBusinessKeys(table, bk_col, num_updates, seed));
  std::vector<int64_t> rows;
  rows.reserve(keys.size());
  {
    const EngineTable::StringIndex& index =
        table->GetOrBuildStringIndex(bk_col);
    for (const std::string& key : keys) {
      auto it = index.find(key);
      if (it != index.end() && !it->second.empty()) {
        rows.push_back(it->second.front());
      }
    }
  }
  // Fig. 8: overwrite changed fields in place.
  int64_t updated = 0;
  for (int64_t row : rows) {
    std::vector<Value> copy;
    copy.reserve(table->num_columns());
    for (size_t c = 0; c < table->num_columns(); ++c) {
      copy.push_back(table->GetValue(row, static_cast<int>(c)));
    }
    DriftAttributes(table, &copy);
    // Also touch one non-key text field so non-decimal tables change too.
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const EngineTable::ColumnMeta& meta = table->column_meta(c);
      if (meta.type == ColumnType::kChar && meta.name.ends_with("_flag")) {
        const Value& v = copy[c];
        copy[c] = Value::Str(!v.is_null() && v.AsString() == "Y" ? "N" : "Y");
        break;
      }
    }
    for (size_t c = 1; c < table->num_columns(); ++c) {
      if (!(copy[c].is_null() &&
            table->GetValue(row, static_cast<int>(c)).is_null())) {
        TPCDS_RETURN_NOT_OK(
            session->SetCell(table, row, static_cast<int>(c), copy[c]));
      }
    }
    ++updated;
  }
  (void)seed;
  return updated;
}

Result<int64_t> InsertFactRefresh(Database* db, const std::string& channel,
                                  const MaintenanceOptions& options,
                                  WalSession* wal) {
  WalSession local(nullptr);
  WalSession* session = wal != nullptr ? wal : &local;
  TPCDS_ASSIGN_OR_RETURN(ChannelColumns cols, ColumnsForChannel(channel));
  EngineTable* sales = db->FindTable(cols.sales_table);
  EngineTable* returns = db->FindTable(cols.returns_table);
  EngineTable* item = db->FindTable("item");
  EngineTable* customer = db->FindTable("customer");
  if (sales == nullptr || returns == nullptr || item == nullptr ||
      customer == nullptr) {
    return Status::NotFound("tables missing for channel " + channel);
  }

  GeneratorOptions gen;
  gen.scale_factor = options.scale_factor;
  gen.master_seed = options.seed;
  int64_t initial_tickets = internal_dsgen::ChannelNumUnits(gen, channel);
  int64_t add = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(initial_tickets) *
                              options.refresh_fraction));
  // Cycle c generates tickets [initial + (c-1)*add, initial + c*add): a
  // fresh, deterministic, non-overlapping slice of the ticket space.
  int64_t first = initial_tickets + (options.refresh_cycle - 1) * add;

  SalesOverrides overrides;
  overrides.first_ticket_number = 1;  // ticket number = override base + index
  overrides.date_window = RefreshWindow(options.refresh_cycle);

  // The extraction step (E of ETL) is represented as generated flat rows.
  MemoryRowSink sales_rows;
  MemoryRowSink returns_rows;
  TPCDS_RETURN_NOT_OK(internal_dsgen::GenerateChannelWithOverrides(
      gen, channel, first, add, overrides, &sales_rows, &returns_rows));

  // Business-key translation (Fig. 10). The generator references the
  // *initial* dimension population by surrogate key; the update file
  // carries business keys instead, and loading resolves them against the
  // *current* dimension state — including revisions created by the SCD
  // updates that ran earlier in this maintenance cycle.
  int item_bk_col = item->ColumnIndex("i_item_id");
  int item_end_col = item->ColumnIndex("i_rec_end_date");
  int cust_bk_col = customer->ColumnIndex("c_customer_id");
  const EngineTable::StringIndex& item_index =
      item->GetOrBuildStringIndex(item_bk_col);
  const EngineTable::StringIndex& cust_index =
      customer->GetOrBuildStringIndex(cust_bk_col);

  auto translate_item = [&](const std::string& surrogate_text)
      -> Result<std::string> {
    if (surrogate_text.empty()) return surrogate_text;
    int64_t original_sk = std::strtoll(surrogate_text.c_str(), nullptr, 10);
    // Extract: surrogate -> business key (initial rows are append-ordered,
    // so the initial surrogate k lives at row k-1). The key is probed as a
    // string_view straight out of column storage — the transparent index
    // avoids materialising a std::string per lookup.
    std::string_view bk = item->column(static_cast<size_t>(item_bk_col))
                              .Str(static_cast<size_t>(original_sk - 1));
    // Load: business key -> most current surrogate (rec_end_date IS NULL).
    auto it = item_index.find(bk);
    if (it == item_index.end()) {
      return Status::Internal("unknown item business key " +
                              std::string(bk));
    }
    for (int64_t row : it->second) {
      if (item->GetValue(row, item_end_col).is_null()) {
        return std::to_string(item->GetValue(row, 0).AsInt());
      }
    }
    return Status::Internal("no open revision for item " + std::string(bk));
  };
  auto translate_customer = [&](const std::string& surrogate_text)
      -> Result<std::string> {
    if (surrogate_text.empty()) return surrogate_text;
    int64_t original_sk = std::strtoll(surrogate_text.c_str(), nullptr, 10);
    std::string_view bk = customer->column(static_cast<size_t>(cust_bk_col))
                              .Str(static_cast<size_t>(original_sk - 1));
    auto it = cust_index.find(bk);
    if (it == cust_index.end() || it->second.empty()) {
      return Status::Internal("unknown customer business key " +
                              std::string(bk));
    }
    return std::to_string(customer->GetValue(it->second.front(), 0).AsInt());
  };

  int sales_item_col = sales->ColumnIndex(cols.sales_item);
  int sales_cust_col = sales->ColumnIndex(cols.sales_customer);
  int returns_item_col = returns->ColumnIndex(cols.returns_item);
  int returns_cust_col = returns->ColumnIndex(cols.returns_customer);

  // Ticket numbers are already unique: the generator numbers refresh
  // tickets beyond the initial population's 1..initial_tickets range.
  // Translation can collapse two line items of one ticket onto the same
  // surrogate (two *revisions* of one item resolve to the single open
  // revision), so de-duplicate on the (item, ticket) primary key.
  const Schema& schema = TpcdsSchema();
  const TableDef* sales_def = schema.FindTable(cols.sales_table);
  const TableDef* returns_def = schema.FindTable(cols.returns_table);
  int sales_ticket_col = sales->ColumnIndex(sales_def->primary_key[1]);
  int returns_ticket_col = returns->ColumnIndex(returns_def->primary_key[1]);
  auto pair_key = [](const std::string& item, const std::string& ticket) {
    return Mix64(static_cast<uint64_t>(
               std::strtoll(item.c_str(), nullptr, 10))) ^
           static_cast<uint64_t>(std::strtoll(ticket.c_str(), nullptr, 10));
  };
  std::unordered_set<uint64_t> seen_sales;
  std::unordered_set<uint64_t> seen_returns;

  int64_t inserted = 0;
  for (auto& fields : sales_rows.mutable_rows()) {
    TPCDS_ASSIGN_OR_RETURN(
        fields[static_cast<size_t>(sales_item_col)],
        translate_item(fields[static_cast<size_t>(sales_item_col)]));
    TPCDS_ASSIGN_OR_RETURN(
        fields[static_cast<size_t>(sales_cust_col)],
        translate_customer(fields[static_cast<size_t>(sales_cust_col)]));
    if (!seen_sales
             .insert(pair_key(fields[static_cast<size_t>(sales_item_col)],
                              fields[static_cast<size_t>(sales_ticket_col)]))
             .second) {
      continue;  // primary-key duplicate after revision collapse
    }
    TPCDS_RETURN_NOT_OK(session->AppendRowStrings(sales, fields));
    ++inserted;
  }
  for (auto& fields : returns_rows.mutable_rows()) {
    TPCDS_ASSIGN_OR_RETURN(
        fields[static_cast<size_t>(returns_item_col)],
        translate_item(fields[static_cast<size_t>(returns_item_col)]));
    TPCDS_ASSIGN_OR_RETURN(
        fields[static_cast<size_t>(returns_cust_col)],
        translate_customer(fields[static_cast<size_t>(returns_cust_col)]));
    if (!seen_returns
             .insert(pair_key(
                 fields[static_cast<size_t>(returns_item_col)],
                 fields[static_cast<size_t>(returns_ticket_col)]))
             .second) {
      continue;
    }
    TPCDS_RETURN_NOT_OK(session->AppendRowStrings(returns, fields));
    ++inserted;
  }
  return inserted;
}

Result<int64_t> DeleteFactRange(Database* db, const std::string& channel,
                                const MaintenanceOptions& options,
                                WalSession* wal) {
  WalSession local(nullptr);
  WalSession* session = wal != nullptr ? wal : &local;
  TPCDS_ASSIGN_OR_RETURN(ChannelColumns cols, ColumnsForChannel(channel));
  EngineTable* sales = db->FindTable(cols.sales_table);
  EngineTable* returns = db->FindTable(cols.returns_table);
  if (sales == nullptr || returns == nullptr) {
    return Status::NotFound("tables missing for channel " + channel);
  }
  auto [begin, end] = RefreshWindow(options.refresh_cycle);
  int date_col = sales->ColumnIndex(cols.sales_date);
  std::vector<int64_t> doomed = sales->FindRowsIntBetween(
      date_col, DateToSk(begin), DateToSk(end));

  // Returns of deleted sales go too, keyed by (item, ticket) — preserving
  // the fact-to-fact integrity the tests verify.
  const Schema& schema = TpcdsSchema();
  const TableDef* sales_def = schema.FindTable(cols.sales_table);
  const TableDef* returns_def = schema.FindTable(cols.returns_table);
  int sales_item_col = sales->ColumnIndex(sales_def->primary_key[0]);
  int sales_ticket_col = sales->ColumnIndex(sales_def->primary_key[1]);
  int returns_item_col = returns->ColumnIndex(returns_def->primary_key[0]);
  int returns_ticket_col = returns->ColumnIndex(returns_def->primary_key[1]);
  std::unordered_set<uint64_t> doomed_keys;
  doomed_keys.reserve(doomed.size());
  for (int64_t row : doomed) {
    uint64_t item = static_cast<uint64_t>(
        sales->GetValue(row, sales_item_col).AsInt());
    uint64_t ticket = static_cast<uint64_t>(
        sales->GetValue(row, sales_ticket_col).AsInt());
    doomed_keys.insert(Mix64(item) ^ ticket);
  }
  std::vector<int64_t> doomed_returns;
  for (int64_t row = 0; row < returns->num_rows(); ++row) {
    uint64_t item = static_cast<uint64_t>(
        returns->GetValue(row, returns_item_col).AsInt());
    uint64_t ticket = static_cast<uint64_t>(
        returns->GetValue(row, returns_ticket_col).AsInt());
    if (doomed_keys.count(Mix64(item) ^ ticket) != 0) {
      doomed_returns.push_back(row);
    }
  }
  TPCDS_ASSIGN_OR_RETURN(int64_t removed,
                         session->DeleteRows(returns, doomed_returns));
  TPCDS_ASSIGN_OR_RETURN(int64_t sales_removed,
                         session->DeleteRows(sales, doomed));
  return removed + sales_removed;
}

Status RunDataMaintenance(Database* db, const MaintenanceOptions& options,
                          MaintenanceReport* report, WalWriter* wal) {
  report->operations.clear();

  // Every mutation flows through one WalSession, which records logical
  // before-images in memory (and in the WAL when a writer is attached).
  // Rollback reverts exactly the rows an operation changed — the
  // whole-table Clone snapshots this replaces copied all 12 mutated
  // tables up front, regardless of how little the run would touch.
  WalSession session(wal);

  auto run_op = [&](const std::string& name, auto&& fn) -> Status {
    if (!options.operations.empty() &&
        std::find(options.operations.begin(), options.operations.end(),
                  name) == options.operations.end()) {
      return Status::OK();  // filtered out by options.operations
    }
    const size_t mark = session.Mark();
    Status status = [&]() -> Status {
      TPCDS_FAULT_POINT("maintenance");
      Stopwatch timer;
      TPCDS_RETURN_NOT_OK(session.BeginOp(name));
      Result<int64_t> rows = fn();
      if (!rows.ok()) return rows.status();
      // The commit marker makes the operation durable; its cost is part
      // of the operation's reported time.
      TPCDS_RETURN_NOT_OK(session.CommitOp(name, *rows));
      report->operations.push_back(
          MaintenanceOpResult{name, *rows, timer.ElapsedSeconds()});
      return Status::OK();
    }();
    if (!status.ok() && wal != nullptr) {
      // Per-operation atomicity under durability: undo only this
      // operation's tail. Committed predecessors stay in memory and in
      // the log; recovery replays exactly them.
      TPCDS_RETURN_NOT_OK(session.UndoToMark(mark));
    }
    return status;
  };

  auto apply = [&]() -> Status {
    // 1-3: history-keeping SCD updates (Fig. 9).
    for (const char* dim : {"item", "store", "web_site"}) {
      TPCDS_RETURN_NOT_OK(run_op(StringPrintf("scd_update:%s", dim), [&] {
        return UpdateHistoryKeepingDimension(
            db, dim, options.dimension_updates,
            Mix64(options.seed ^ static_cast<uint64_t>(
                                     options.refresh_cycle)),
            &session);
      }));
    }
    // 4-6: non-history updates (Fig. 8).
    for (const char* dim : {"customer", "customer_address", "promotion"}) {
      TPCDS_RETURN_NOT_OK(run_op(StringPrintf("inplace_update:%s", dim), [&] {
        return UpdateNonHistoryDimension(
            db, dim, options.dimension_updates,
            Mix64(options.seed * 31 ^ static_cast<uint64_t>(
                                          options.refresh_cycle)),
            &session);
      }));
    }
    // 7-9: clustered deletes; 10-12: clustered inserts with key translation
    // (Fig. 10). Deletes run first: the insert refills the emptied window.
    for (const char* channel : {"store", "catalog", "web"}) {
      TPCDS_RETURN_NOT_OK(run_op(StringPrintf("fact_delete:%s", channel), [&] {
        return DeleteFactRange(db, channel, options, &session);
      }));
    }
    for (const char* channel : {"store", "catalog", "web"}) {
      TPCDS_RETURN_NOT_OK(run_op(StringPrintf("fact_insert:%s", channel), [&] {
        return InsertFactRefresh(db, channel, options, &session);
      }));
    }
    return Status::OK();
  };

  Status status = apply();
  if (!status.ok() && wal == nullptr) {
    // No durability attached: the run is atomic as a whole. Unwind every
    // operation (the 12 ops are interdependent — a fact insert resolves
    // keys against SCD revisions created earlier in the same cycle) and
    // clear the report, leaving the database exactly as before.
    TPCDS_RETURN_NOT_OK(session.UndoToMark(0));
    report->operations.clear();
  }
  return status;
}

const std::vector<std::string>& MaintainedTables() {
  static const std::vector<std::string> kTables = {
      // SCD + in-place dimensions.
      "item", "store", "web_site",
      "customer", "customer_address", "promotion",
      // Fact tables touched by the clustered inserts/deletes.
      "store_sales", "store_returns",
      "catalog_sales", "catalog_returns",
      "web_sales", "web_returns",
  };
  return kTables;
}

Status RunMaintenanceGeneration(Database* db,
                                const MaintenanceOptions& options,
                                MaintenanceReport* report, WalWriter* wal,
                                DataFacadeProvider* provider) {
  // Build generation N+1: deep-copy only the 12 mutated tables, share the
  // rest. Concurrent readers holding a facade of generation N are never
  // touched — the fork mutates private clones.
  TPCDS_ASSIGN_OR_RETURN(std::unique_ptr<Database> build,
                         db->ForkForMaintenance(MaintainedTables()));
  Status status = RunDataMaintenance(build.get(), options, report, wal);
  // Publish semantics mirror the in-place path: a WAL-attached run keeps
  // its committed prefix (that is what crash recovery replays, and the
  // recover-verify hash is stated against the live database), a
  // non-durable failure already rolled the fork back to pristine — the
  // swap is then skipped so `db` never even observes the no-op adoption.
  if (status.ok() || wal != nullptr) {
    // Optimizer statistics on the mutated tables were invalidated with the
    // rest of the derived state. Recollect before publishing — but only
    // where the outgoing generation had computed stats, so workloads that
    // never plan cost-based don't pay an analyze pass per cycle.
    std::vector<std::string> refresh;
    for (const std::string& name : MaintainedTables()) {
      const EngineTable* old_table = db->FindTable(name);
      if (old_table != nullptr && old_table->ComputedStats() != nullptr) {
        refresh.push_back(name);
      }
    }
    TPCDS_RETURN_NOT_OK(db->AdoptTablesFrom(build.get()));
    for (const std::string& name : refresh) {
      EngineTable* table = db->FindTable(name);
      if (table != nullptr) table->GetOrComputeStats();
    }
    if (provider != nullptr) provider->Publish(db->Snapshot());
  }
  return status;
}

Status RunRefreshDutyCycle(Database* db,
                           const MaintenanceOptions& base_options, int cycles,
                           double period_ms, DutyCycleReport* report,
                           WalWriter* wal, DataFacadeProvider* provider,
                           const std::atomic<bool>* stop) {
  if (cycles < 1) {
    return Status::InvalidArgument("duty cycle needs at least one firing");
  }
  if (period_ms < 0.0) {
    return Status::InvalidArgument("duty cycle period must be >= 0 ms");
  }
  for (int cycle = 0; cycle < cycles; ++cycle) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) break;
    if (period_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(period_ms));
    }
    if (stop != nullptr && stop->load(std::memory_order_acquire)) break;
    MaintenanceOptions options = base_options;
    options.refresh_cycle = base_options.refresh_cycle + cycle;
    MaintenanceReport cycle_report;
    ++report->cycles_attempted;
    Status status =
        RunMaintenanceGeneration(db, options, &cycle_report, wal, provider);
    for (MaintenanceOpResult& op : cycle_report.operations) {
      report->operations.operations.push_back(std::move(op));
    }
    if (!status.ok()) {
      ++report->cycles_failed;
      report->errors.push_back(status.ToString());
    }
  }
  return Status::OK();
}

}  // namespace tpcds
