#include "service/service.h"

#include <algorithm>
#include <chrono>

#include "util/fault.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* QueryDispositionToString(QueryDisposition d) {
  switch (d) {
    case QueryDisposition::kCompleted:
      return "completed";
    case QueryDisposition::kFailed:
      return "failed";
    case QueryDisposition::kShed:
      return "shed";
    case QueryDisposition::kRejectedQueueFull:
      return "rejected-queue-full";
    case QueryDisposition::kRejectedDeadline:
      return "rejected-deadline";
  }
  return "unknown";
}

std::string ServiceCounters::ToString() const {
  return StringPrintf(
      "submitted %lld | admitted %lld (queued %lld) | completed %lld, "
      "failed %lld, shed %lld, rejected queue-full %lld, rejected deadline "
      "%lld | peak queue %lld, peak running %lld | pool %lld bytes in use "
      "(peak %lld)",
      static_cast<long long>(submitted), static_cast<long long>(admitted),
      static_cast<long long>(queued), static_cast<long long>(completed),
      static_cast<long long>(failed), static_cast<long long>(shed),
      static_cast<long long>(rejected_queue_full),
      static_cast<long long>(rejected_deadline),
      static_cast<long long>(peak_queue_depth),
      static_cast<long long>(peak_running),
      static_cast<long long>(pool_bytes_in_use),
      static_cast<long long>(pool_peak_bytes));
}

/// Shared state of one submitted statement. Admission fields (queue
/// membership, governor, resolved flag) are guarded by the service mutex;
/// the completion latch has its own leaf mutex so Wait() never touches
/// service state. Lock order: service mu_ before State::mu, always.
struct QueryTicket::State {
  // Immutable after Submit.
  std::string sql;
  SessionOptions session;
  double submit_seconds = 0.0;
  double deadline_seconds = 0.0;  // absolute steady-clock; 0 = none
  uint64_t seq = 0;

  // Guarded by the owning service's mu_.
  bool in_queue = false;
  bool resolved = false;
  bool cancel_requested = false;
  bool waited = false;  // entered the queue without a free slot
  std::string cancel_reason;
  std::shared_ptr<QueryGovernor> governor;  // set while running
  QueryOutcome staged_outcome;  // filled by Execute, committed by worker

  // Cleared when resolved; lets Cancel find the service lock-free.
  std::atomic<QueryService*> service{nullptr};

  // Completion latch (leaf lock).
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  QueryOutcome outcome;
};

const QueryOutcome& QueryTicket::Wait() const {
  static const QueryOutcome kEmpty;
  if (state_ == nullptr) return kEmpty;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->outcome;
}

bool QueryTicket::Done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

void QueryTicket::Cancel(const std::string& reason) const {
  if (state_ == nullptr) return;
  QueryService* service = state_->service.load(std::memory_order_acquire);
  if (service == nullptr) return;  // already resolved
  service->CancelTicket(state_, reason);
}

QueryService::QueryService(const ServiceConfig& config,
                           const DataFacadeProvider* provider)
    : config_(config),
      provider_(provider),
      pool_(config.global_memory_budget_bytes) {
  if (config_.worker_slots < 1) config_.worker_slots = 1;
  workers_.reserve(static_cast<size_t>(config_.worker_slots));
  for (int i = 0; i < config_.worker_slots; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::QueryService(const ServiceConfig& config,
                           std::shared_ptr<const DataFacade> facade)
    : QueryService(config, static_cast<const DataFacadeProvider*>(nullptr)) {
  facade_ = std::move(facade);
}

QueryService::QueryService(const ServiceConfig& config, const Database& db)
    : QueryService(config, static_cast<const DataFacadeProvider*>(nullptr)) {
  owned_provider_.Publish(db.Snapshot());
  provider_ = &owned_provider_;
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Graceful drain: everything still waiting is shed (resolved, never
    // lost); running statements finish on their workers below.
    std::vector<std::shared_ptr<QueryTicket::State>> waiting;
    waiting.swap(queue_);
    for (const auto& t : waiting) {
      t->in_queue = false;
      QueryOutcome out;
      out.disposition = QueryDisposition::kShed;
      out.status = Status::ResourceExhausted("shed: service shutting down");
      out.waited_in_queue = true;
      ResolveLocked(t, out.disposition, std::move(out.status));
    }
    work_ready_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
}

Session QueryService::OpenSession(SessionOptions options) {
  return Session(this, std::move(options));
}

ServiceCounters QueryService::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceCounters snapshot = counters_;
  snapshot.pool_bytes_in_use = pool_.used();
  snapshot.pool_peak_bytes = pool_.peak();
  return snapshot;
}

std::vector<double> QueryService::CompletedLatenciesMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_latencies_ms_;
}

QueryTicket Session::Submit(const std::string& sql) const {
  return service_->SubmitInternal(options_, sql);
}

QueryOutcome Session::Execute(const std::string& sql) const {
  return Submit(sql).Wait();
}

void QueryService::ResolveLocked(
    const std::shared_ptr<QueryTicket::State>& t,
    QueryDisposition disposition, Status status) {
  QueryOutcome out;
  out.disposition = disposition;
  out.status = std::move(status);
  ResolveOutcomeLocked(t, std::move(out));
}

void QueryService::ResolveOutcomeLocked(
    const std::shared_ptr<QueryTicket::State>& t, QueryOutcome out) {
  if (t->resolved) return;
  t->resolved = true;
  t->service.store(nullptr, std::memory_order_release);
  double now = SteadyNowSeconds();
  out.total_ms = (now - t->submit_seconds) * 1e3;
  if (out.queue_ms == 0.0 &&
      (out.disposition == QueryDisposition::kShed ||
       out.disposition == QueryDisposition::kRejectedDeadline) &&
      out.waited_in_queue) {
    out.queue_ms = out.total_ms;
  }
  switch (out.disposition) {
    case QueryDisposition::kCompleted:
      ++counters_.completed;
      completed_latencies_ms_.push_back(out.total_ms);
      break;
    case QueryDisposition::kFailed:
      ++counters_.failed;
      break;
    case QueryDisposition::kShed:
      ++counters_.shed;
      break;
    case QueryDisposition::kRejectedQueueFull:
      ++counters_.rejected_queue_full;
      break;
    case QueryDisposition::kRejectedDeadline:
      ++counters_.rejected_deadline;
      break;
  }
  if (out.exec_ms > 0.0) {
    ema_exec_ms_ = ema_exec_ms_ == 0.0 ? out.exec_ms
                                       : 0.8 * ema_exec_ms_ + 0.2 * out.exec_ms;
  }
  {
    std::lock_guard<std::mutex> lock(t->mu);
    t->outcome = std::move(out);
    t->done = true;
  }
  t->cv.notify_all();
}

QueryTicket QueryService::SubmitInternal(const SessionOptions& session,
                                         const std::string& sql) {
  auto t = std::make_shared<QueryTicket::State>();
  t->sql = sql;
  t->session = session;
  double now = SteadyNowSeconds();
  t->submit_seconds = now;
  double deadline_ms = session.deadline_ms > 0.0
                           ? session.deadline_ms
                           : config_.default_deadline_ms;
  if (deadline_ms > 0.0) t->deadline_seconds = now + deadline_ms / 1e3;
  QueryTicket ticket(t);

  std::lock_guard<std::mutex> lock(mu_);
  t->seq = next_seq_++;
  t->service.store(this, std::memory_order_release);
  ++counters_.submitted;

  if (shutdown_) {
    ResolveLocked(t, QueryDisposition::kShed,
                  Status::ResourceExhausted("shed: service shutting down"));
    return ticket;
  }

  // Admission fault site: an injected fault resolves the submit with the
  // injected error (still exactly one resolution — nothing is lost).
  if (FaultInjector::Global().enabled()) {
    Status st = FaultInjector::Global().Maybe("admit");
    if (!st.ok()) {
      ResolveLocked(t, QueryDisposition::kFailed, std::move(st));
      return ticket;
    }
  }

  if (t->deadline_seconds > 0.0) {
    // Already expired at submit.
    if (now >= t->deadline_seconds) {
      ResolveLocked(t, QueryDisposition::kRejectedDeadline,
                    Status::ResourceExhausted(StringPrintf(
                        "deadline of %.3f ms already expired at submit",
                        deadline_ms)));
      return ticket;
    }
    // Predictably missed: with every slot busy, the expected wait behind
    // the current backlog (EMA of recent execution times) already blows
    // the deadline — reject now instead of letting it rot in the queue.
    if (ema_exec_ms_ > 0.0 && running_ >= config_.worker_slots) {
      double est_wait_ms = ema_exec_ms_ *
                           static_cast<double>(queue_.size() + 1) /
                           static_cast<double>(config_.worker_slots);
      if (now + est_wait_ms / 1e3 > t->deadline_seconds) {
        ResolveLocked(
            t, QueryDisposition::kRejectedDeadline,
            Status::ResourceExhausted(StringPrintf(
                "would miss its %.3f ms deadline in queue (estimated wait "
                "%.3f ms behind %zu waiter(s))",
                deadline_ms, est_wait_ms, queue_.size())));
        return ticket;
      }
    }
  }

  bool immediate = running_ < config_.worker_slots && queue_.empty();
  if (!immediate && config_.max_queue_depth > 0 &&
      queue_.size() >= config_.max_queue_depth) {
    // Overload: shed the newest lowest-priority waiter to admit strictly
    // higher-priority work; otherwise signal backpressure to the caller.
    size_t victim = queue_.size();
    for (size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i]->session.priority >= session.priority) continue;
      if (victim == queue_.size() ||
          queue_[i]->session.priority <
              queue_[victim]->session.priority ||
          (queue_[i]->session.priority ==
               queue_[victim]->session.priority &&
           queue_[i]->seq > queue_[victim]->seq)) {
        victim = i;
      }
    }
    Status shed_fault;
    if (victim < queue_.size() && FaultInjector::Global().enabled()) {
      shed_fault = FaultInjector::Global().Maybe("shed");
    }
    if (victim < queue_.size() && shed_fault.ok()) {
      std::shared_ptr<QueryTicket::State> shed = queue_[victim];
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(victim));
      shed->in_queue = false;
      QueryOutcome out;
      out.disposition = QueryDisposition::kShed;
      out.status = Status::ResourceExhausted(StringPrintf(
          "shed under overload: displaced by priority-%d work (own "
          "priority %d)",
          session.priority, shed->session.priority));
      out.waited_in_queue = true;
      ResolveOutcomeLocked(shed, std::move(out));
    } else {
      ResolveLocked(
          t, QueryDisposition::kRejectedQueueFull,
          Status::ResourceExhausted(StringPrintf(
              "admission queue full (%zu waiting%s): backpressure — retry "
              "with backoff",
              queue_.size(),
              shed_fault.ok() ? "" : ", shedding unavailable")));
      return ticket;
    }
  }

  t->in_queue = true;
  t->waited = !immediate;
  queue_.push_back(t);
  if (!immediate) ++counters_.queued;
  counters_.peak_queue_depth =
      std::max(counters_.peak_queue_depth,
               static_cast<int64_t>(queue_.size()));
  work_ready_.notify_one();
  return ticket;
}

void QueryService::CancelTicket(
    const std::shared_ptr<QueryTicket::State>& t,
    const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (t->resolved) return;
  std::string why = reason.empty() ? "query cancelled" : reason;
  if (t->in_queue) {
    auto it = std::find(queue_.begin(), queue_.end(), t);
    if (it != queue_.end()) queue_.erase(it);
    t->in_queue = false;
    ResolveLocked(t, QueryDisposition::kFailed, Status::Cancelled(why));
    return;
  }
  if (t->governor != nullptr) {
    t->governor->Cancel(why);
    return;
  }
  // Not yet picked up (or between dequeue and governor creation): the
  // worker honours the flag before execution.
  t->cancel_requested = true;
  t->cancel_reason = why;
}

std::shared_ptr<QueryTicket::State> QueryService::DequeueLocked() {
  double now = SteadyNowSeconds();
  // Deadline sweep: waiters whose deadline expired in the queue resolve
  // immediately instead of burning a slot on a dead answer.
  for (auto it = queue_.begin(); it != queue_.end();) {
    QueryTicket::State& s = **it;
    if (s.deadline_seconds > 0.0 && now > s.deadline_seconds) {
      std::shared_ptr<QueryTicket::State> expired = *it;
      it = queue_.erase(it);
      expired->in_queue = false;
      QueryOutcome out;
      out.disposition = QueryDisposition::kRejectedDeadline;
      out.status = Status::ResourceExhausted(StringPrintf(
          "deadline expired after %.3f ms in the admission queue",
          (now - expired->submit_seconds) * 1e3));
      out.waited_in_queue = true;
      ResolveOutcomeLocked(expired, std::move(out));
      continue;
    }
    ++it;
  }
  if (queue_.empty()) return nullptr;
  // Highest priority first; FIFO (lowest seq) within a priority.
  size_t best = 0;
  for (size_t i = 1; i < queue_.size(); ++i) {
    int pi = queue_[i]->session.priority;
    int pb = queue_[best]->session.priority;
    if (pi > pb || (pi == pb && queue_[i]->seq < queue_[best]->seq)) {
      best = i;
    }
  }
  std::shared_ptr<QueryTicket::State> t = queue_[best];
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(best));
  t->in_queue = false;
  return t;
}

void QueryService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::shared_ptr<QueryTicket::State> t = DequeueLocked();
    if (t == nullptr) {
      if (shutdown_) return;
      work_ready_.wait(lock);
      continue;
    }
    ++running_;
    counters_.peak_running =
        std::max(counters_.peak_running, static_cast<int64_t>(running_));
    ++counters_.admitted;
    double now = SteadyNowSeconds();
    double queue_ms = (now - t->submit_seconds) * 1e3;
    // Effective execution limits: session overrides service defaults, and
    // the governor deadline is the time *remaining* until the end-to-end
    // deadline — queue wait already spent part of the budget.
    GovernorLimits limits = t->session.limits.any()
                                ? t->session.limits
                                : config_.default_limits;
    if (t->deadline_seconds > 0.0) {
      double remaining_ms = (t->deadline_seconds - now) * 1e3;
      if (remaining_ms < 0.01) remaining_ms = 0.01;
      limits.timeout_ms = limits.timeout_ms > 0.0
                              ? std::min(limits.timeout_ms, remaining_ms)
                              : remaining_ms;
    }
    t->governor = std::make_shared<QueryGovernor>(limits);
    t->governor->set_parent_pool(&pool_);
    if (t->cancel_requested) t->governor->Cancel(t->cancel_reason);
    lock.unlock();
    Execute(t, queue_ms);
    lock.lock();
    --running_;
    // Drop the governor before resolving: its destructor credits every
    // outstanding byte back to the global pool, so the moment the last
    // ticket resolves the pool reads exactly zero.
    QueryOutcome out = std::move(t->staged_outcome);
    t->governor.reset();
    ResolveOutcomeLocked(t, std::move(out));
  }
}

void QueryService::Execute(const std::shared_ptr<QueryTicket::State>& t,
                           double queue_ms) {
  QueryOutcome out;
  out.queue_ms = queue_ms;
  out.waited_in_queue = t->waited;
  // exec_ms covers the worker's whole occupancy — including the
  // on_execute test hook, so instrumented delays feed the EMA that drives
  // predictive deadline rejection.
  double start = SteadyNowSeconds();
  if (config_.on_execute) config_.on_execute(t->sql, t->session.priority);
  std::shared_ptr<const DataFacade> facade =
      provider_ != nullptr ? provider_->Acquire() : facade_;
  ExecStats stats;
  Result<QueryResult> result =
      facade == nullptr
          ? Result<QueryResult>(
                Status::Internal("query service has no published facade"))
          : QueryFacade(*facade, t->sql, config_.planner, &stats,
                        t->governor.get());
  out.exec_ms = (SteadyNowSeconds() - start) * 1e3;
  if (out.exec_ms <= 0.0) out.exec_ms = 1e-3;  // clock-resolution floor
  out.rows_scanned = stats.rows_scanned;
  out.generation = facade != nullptr ? facade->generation() : 0;
  if (result.ok()) {
    out.disposition = QueryDisposition::kCompleted;
    out.result = std::move(*result);
  } else {
    out.disposition = QueryDisposition::kFailed;
    out.status = result.status();
  }
  t->staged_outcome = std::move(out);
}

}  // namespace tpcds
