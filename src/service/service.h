#ifndef TPCDS_SERVICE_SERVICE_H_
#define TPCDS_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/data_facade.h"
#include "engine/database.h"
#include "engine/governor.h"
#include "engine/planner.h"
#include "util/status.h"

namespace tpcds {

/// Terminal disposition of one submitted statement. Every Submit resolves
/// to exactly one of these — the no-lost-queries invariant the overload
/// drills assert is
///
///   completed + failed + shed + rejected_queue_full + rejected_deadline
///     == submitted
enum class QueryDisposition {
  /// Admitted, executed, returned rows.
  kCompleted,
  /// Admitted but execution returned an error (budget trip, injected
  /// fault, cancellation) — retryable by the caller.
  kFailed,
  /// Dropped from the admission queue under overload to let
  /// higher-priority work through (or at service shutdown). Never applies
  /// to a running query: admitted work always finishes.
  kShed,
  /// Rejected at submit because the admission queue was full and no
  /// lower-priority victim existed — the backpressure signal; callers
  /// should back off before retrying.
  kRejectedQueueFull,
  /// Rejected because the per-tenant deadline expired in the queue (or
  /// predictably would, given the current backlog) — failing fast beats
  /// burning a worker slot on an answer nobody is waiting for.
  kRejectedDeadline,
};

const char* QueryDispositionToString(QueryDisposition d);

/// Per-session admission parameters.
struct SessionOptions {
  std::string tenant = "default";
  /// Higher runs first and sheds last; under overload the newest
  /// lowest-priority queued statement is dropped first.
  int priority = 0;
  /// End-to-end deadline per statement (queue wait + execution), measured
  /// from Submit. 0 falls back to ServiceConfig::default_deadline_ms.
  double deadline_ms = 0.0;
  /// Per-query execution limits; all-zero falls back to
  /// ServiceConfig::default_limits.
  GovernorLimits limits;
};

/// Everything known about one resolved statement.
struct QueryOutcome {
  QueryDisposition disposition = QueryDisposition::kFailed;
  Status status;  // OK iff disposition == kCompleted
  QueryResult result;
  /// True when the statement waited in the admission queue before running
  /// (false for immediate admission and for submit-time rejections).
  bool waited_in_queue = false;
  double queue_ms = 0.0;  // time between Submit and slot grant / rejection
  double exec_ms = 0.0;   // executor wall time (0 unless admitted)
  double total_ms = 0.0;  // Submit to resolution
  int64_t rows_scanned = 0;
  /// Generation of the dataset facade the query pinned (0 unless
  /// admitted) — under a mid-run hot-swap each query reads exactly one.
  uint64_t generation = 0;
};

/// Monotonic service telemetry, snapshot under one mutex so the balance
/// invariant holds at every observation point.
struct ServiceCounters {
  int64_t submitted = 0;
  int64_t admitted = 0;  // granted a worker slot (immediately or queued)
  int64_t queued = 0;    // entered the wait queue (whatever the final fate)
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t shed = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_deadline = 0;
  int64_t peak_queue_depth = 0;
  int64_t peak_running = 0;
  int64_t pool_bytes_in_use = 0;  // global memory pool at snapshot time
  int64_t pool_peak_bytes = 0;

  /// The no-lost-queries invariant.
  bool Balanced() const {
    return completed + failed + shed + rejected_queue_full +
               rejected_deadline ==
           submitted;
  }
  /// The drained-pool invariant: every reservation charged to the global
  /// memory pool was released by the time the counters were snapshotted.
  bool PoolDrained() const { return pool_bytes_in_use == 0; }
  std::string ToString() const;
};

/// Configuration of one QueryService instance.
struct ServiceConfig {
  /// Concurrent statement executions (the concurrency pool). Queries
  /// beyond this wait in the admission queue.
  int worker_slots = 2;
  /// Bound of the admission queue; a submit finding it full either sheds
  /// a lower-priority waiter or is rejected (backpressure). 0 = unbounded.
  size_t max_queue_depth = 64;
  /// Capacity of the global memory pool every admitted query's governor
  /// charges (per-session reservations roll up here). 0 = unlimited.
  int64_t global_memory_budget_bytes = 0;
  /// Default end-to-end deadline per statement; 0 = none.
  double default_deadline_ms = 0.0;
  /// Default per-query execution limits for sessions that set none.
  GovernorLimits default_limits;
  /// Planner options statements execute with (per-query limit fields are
  /// superseded by the governor the service builds).
  PlannerOptions planner;
  /// Test instrumentation: invoked by the worker right before executing a
  /// statement (no locks held). Lets tests hold worker slots occupied at
  /// a barrier to make admission states deterministic.
  std::function<void(const std::string& sql, int priority)> on_execute;
};

class QueryService;

/// Handle to one submitted statement; cheap to copy. Wait() blocks until
/// the service resolves it (valid even after the service is destroyed —
/// shutdown resolves everything first).
class QueryTicket {
 public:
  QueryTicket() = default;

  /// Blocks until resolved; the outcome reference stays valid for the
  /// ticket's lifetime.
  const QueryOutcome& Wait() const;
  bool Done() const;

  /// Cancels: a queued statement resolves kFailed/kCancelled without
  /// running; a running one trips its governor at the next morsel
  /// boundary. Requires the service to still be alive.
  void Cancel(const std::string& reason) const;

 private:
  friend class QueryService;
  struct State;
  explicit QueryTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// One client's connection to the service: remembers tenant, priority and
/// limits, and stamps them on every submitted statement.
class Session {
 public:
  /// Enqueues the statement for admission; never blocks on execution.
  QueryTicket Submit(const std::string& sql) const;
  /// Submit + Wait.
  QueryOutcome Execute(const std::string& sql) const;

  const SessionOptions& options() const { return options_; }

 private:
  friend class QueryService;
  Session(QueryService* service, SessionOptions options)
      : service_(service), options_(std::move(options)) {}
  QueryService* service_;
  SessionOptions options_;
};

/// A concurrent in-process query service: many sessions submit SQL that a
/// bounded worker pool multiplexes onto the morsel-parallel executor
/// against pinned DataFacade generations, behind real admission control —
/// global memory and concurrency pools, a bounded priority admission
/// queue with per-tenant deadlines, backpressure when the queue is full,
/// and graceful newest-low-priority-first shedding under overload so
/// admitted queries always finish. See docs/SERVICE.md.
class QueryService {
 public:
  /// Serves queries from whatever generation `provider` currently
  /// publishes; each admitted statement acquires the facade once and pins
  /// it for its whole execution (hot-swap safe). The provider must
  /// outlive the service and have published at least one generation.
  QueryService(const ServiceConfig& config,
               const DataFacadeProvider* provider);
  /// Convenience: serves a single pinned generation.
  QueryService(const ServiceConfig& config,
               std::shared_ptr<const DataFacade> facade);
  /// Convenience: pins a snapshot of `db` at construction.
  QueryService(const ServiceConfig& config, const Database& db);

  /// Stops admission, sheds every queued statement (kShed, "service
  /// shutting down"), lets running queries finish, joins the workers.
  /// Every ticket ever submitted is resolved when this returns.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  Session OpenSession(SessionOptions options = {});

  /// Consistent telemetry snapshot (balance invariant holds).
  ServiceCounters Counters() const;

  /// Client-observed total latencies (ms) of completed statements, for
  /// percentile reporting.
  std::vector<double> CompletedLatenciesMs() const;

  /// The global admission-control memory pool (drains to zero when no
  /// query is in flight).
  ResourcePool& memory_pool() { return pool_; }

  const ServiceConfig& config() const { return config_; }

 private:
  friend class Session;
  friend class QueryTicket;

  QueryTicket SubmitInternal(const SessionOptions& session,
                             const std::string& sql);
  void WorkerLoop();
  /// Picks the next runnable ticket (highest priority, oldest first),
  /// resolving deadline-expired waiters along the way; nullptr when the
  /// queue has no runnable work. Caller holds mu_.
  std::shared_ptr<QueryTicket::State> DequeueLocked();
  /// Resolves a ticket (exactly once) and updates counters. Caller holds
  /// mu_.
  void ResolveLocked(const std::shared_ptr<QueryTicket::State>& t,
                     QueryDisposition disposition, Status status);
  void ResolveOutcomeLocked(const std::shared_ptr<QueryTicket::State>& t,
                            QueryOutcome out);
  void CancelTicket(const std::shared_ptr<QueryTicket::State>& t,
                    const std::string& reason);
  void Execute(const std::shared_ptr<QueryTicket::State>& t,
               double queue_ms);

  ServiceConfig config_;
  const DataFacadeProvider* provider_;       // one of provider_/facade_ set
  std::shared_ptr<const DataFacade> facade_;  // pinned-generation mode
  DataFacadeProvider owned_provider_;         // backs the Database ctor

  ResourcePool pool_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::vector<std::shared_ptr<QueryTicket::State>> queue_;
  ServiceCounters counters_;
  std::vector<double> completed_latencies_ms_;
  double ema_exec_ms_ = 0.0;  // drives predictive deadline rejection
  uint64_t next_seq_ = 0;
  int running_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace tpcds

#endif  // TPCDS_SERVICE_SERVICE_H_
