#ifndef TPCDS_DIST_DOMAINS_H_
#define TPCDS_DIST_DOMAINS_H_

#include <vector>

#include "dist/distribution.h"

namespace tpcds {

/// The embedded domain catalog — this library's equivalent of the official
/// kit's tpcds.idx file. The paper (§3.2) calls for a hybrid of synthetic
/// and real-world-based domains: names/cities/counties here carry
/// census-style frequency skew, while categorical business domains are
/// uniform. Each accessor returns a process-lifetime singleton.
namespace domains {

// --- people -------------------------------------------------------------
const Distribution& FirstNames();   // weighted by real-world frequency
const Distribution& LastNames();    // weighted by real-world frequency
const Distribution& Salutations();
const Distribution& Countries();

// --- geography ----------------------------------------------------------
const Distribution& Cities();       // weighted: big cities more frequent
const Distribution& Counties();     // scaled-down county domain (paper §3.1)
const Distribution& States();       // weighted by population
const Distribution& StreetNames();
const Distribution& StreetTypes();
const Distribution& SuiteQualifiers();
const Distribution& LocationTypes();

// --- demographics -------------------------------------------------------
const Distribution& Genders();
const Distribution& MaritalStatuses();
const Distribution& EducationStatuses();
const Distribution& CreditRatings();
const Distribution& BuyPotentials();

// --- item hierarchy (paper Fig. 5) --------------------------------------
const Distribution& Categories();
/// Classes of one category; single-inheritance: each class belongs to
/// exactly one category.
const Distribution& ClassesOf(int category_index);
const Distribution& Colors();
const Distribution& Units();
const Distribution& Containers();
const Distribution& Sizes();
const Distribution& BrandSyllables();

// --- misc business domains ----------------------------------------------
const Distribution& ReasonDescriptions();
const Distribution& ShipModeTypes();
const Distribution& ShipModeCodes();
const Distribution& ShipModeCarriers();
const Distribution& PromoPurposes();
const Distribution& Departments();
const Distribution& CatalogPageTypes();
const Distribution& WebPageTypes();
const Distribution& CallCenterClasses();
const Distribution& CallCenterHours();
const Distribution& MarketClasses();
/// Filler nouns used for generated text (market descriptions, item
/// descriptions); Gaussian word selection per the paper (§3.2).
const Distribution& Words();

}  // namespace domains
}  // namespace tpcds

#endif  // TPCDS_DIST_DOMAINS_H_
