#ifndef TPCDS_DIST_DISTRIBUTION_H_
#define TPCDS_DIST_DISTRIBUTION_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace tpcds {

/// A weighted domain of strings — the in-memory equivalent of one entry in
/// the official kit's tpcds.idx distribution file. Values can be drawn
/// weighted (real-world skew, e.g. frequent first names), uniformly
/// (comparability zones require uniform likelihood within a zone), or
/// addressed by ordinal (mixed-radix cross-product dimensions).
class Distribution {
 public:
  Distribution() = default;
  Distribution(std::string name,
               std::vector<std::pair<std::string, double>> entries);

  /// Builds a distribution where every value has weight 1.
  static Distribution Uniform(std::string name,
                              std::vector<std::string> values);

  const std::string& name() const { return name_; }
  size_t size() const { return values_.size(); }
  const std::string& value(size_t index) const { return values_[index]; }
  double weight(size_t index) const { return weights_[index]; }

  /// Index of `value`, or -1 when absent.
  int IndexOf(const std::string& value) const;

  /// One weighted draw.
  const std::string& PickWeighted(RngStream* rng) const;
  size_t PickWeightedIndex(RngStream* rng) const;

  /// One uniform draw.
  const std::string& PickUniform(RngStream* rng) const;
  size_t PickUniformIndex(RngStream* rng) const {
    return static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(size()) - 1));
  }

 private:
  std::string name_;
  std::vector<std::string> values_;
  std::vector<double> weights_;
  std::vector<double> cumulative_;  // prefix sums for O(log n) weighted draw
};

}  // namespace tpcds

#endif  // TPCDS_DIST_DISTRIBUTION_H_
