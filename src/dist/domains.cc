#include "dist/domains.h"

namespace tpcds {
namespace domains {
namespace {

using Entries = std::vector<std::pair<std::string, double>>;

const Distribution* MakeWeighted(const char* name, Entries entries) {
  return new Distribution(name, std::move(entries));
}

const Distribution* MakeUniform(const char* name,
                                std::vector<std::string> values) {
  return new Distribution(Distribution::Uniform(name, std::move(values)));
}

}  // namespace

const Distribution& FirstNames() {
  static const Distribution& d = *MakeWeighted(
      "first_names",
      {// Weights follow US census frequency ranks (paper: "frequent names").
       {"James", 3.318},   {"John", 3.271},    {"Robert", 3.143},
       {"Michael", 2.629}, {"Mary", 2.629},    {"William", 2.451},
       {"David", 2.363},   {"Richard", 1.703}, {"Charles", 1.523},
       {"Joseph", 1.404},  {"Thomas", 1.380},  {"Patricia", 1.073},
       {"Linda", 1.035},   {"Barbara", 0.980}, {"Christopher", 1.035},
       {"Daniel", 0.974},  {"Paul", 0.948},    {"Mark", 0.938},
       {"Elizabeth", 0.937}, {"Donald", 0.931}, {"Jennifer", 0.932},
       {"George", 0.927},  {"Maria", 0.828},   {"Kenneth", 0.826},
       {"Susan", 0.794},   {"Steven", 0.780},  {"Edward", 0.779},
       {"Margaret", 0.768}, {"Brian", 0.736},  {"Ronald", 0.725},
       {"Dorothy", 0.727}, {"Anthony", 0.721}, {"Lisa", 0.704},
       {"Kevin", 0.671},   {"Nancy", 0.669},   {"Karen", 0.667},
       {"Betty", 0.666},   {"Helen", 0.663},   {"Jason", 0.660},
       {"Matthew", 0.657}, {"Gary", 0.650},    {"Timothy", 0.640},
       {"Sandra", 0.629},  {"Jose", 0.613},    {"Larry", 0.598},
       {"Jeffrey", 0.591}, {"Frank", 0.581},   {"Donna", 0.583},
       {"Carol", 0.582},   {"Ruth", 0.562},    {"Scott", 0.546},
       {"Eric", 0.544},    {"Stephen", 0.540}, {"Andrew", 0.537},
       {"Sharon", 0.522},  {"Michelle", 0.519}, {"Laura", 0.510},
       {"Sarah", 0.508},   {"Kimberly", 0.504}, {"Deborah", 0.494},
       {"Jessica", 0.490}, {"Raymond", 0.488}, {"Shirley", 0.482},
       {"Cynthia", 0.469}, {"Angela", 0.468},  {"Melissa", 0.462},
       {"Brenda", 0.455},  {"Amy", 0.451},     {"Jerry", 0.432},
       {"Gregory", 0.421}, {"Anna", 0.440},    {"Joshua", 0.435},
       {"Virginia", 0.430}, {"Rebecca", 0.430}, {"Kathleen", 0.424},
       {"Dennis", 0.415},  {"Pamela", 0.416},  {"Martha", 0.411},
       {"Debra", 0.408},   {"Amanda", 0.404},  {"Walter", 0.399},
       {"Stephanie", 0.400}, {"Willie", 0.397}, {"Patrick", 0.389},
       {"Terry", 0.381},   {"Carolyn", 0.381}, {"Peter", 0.381},
       {"Christine", 0.378}, {"Marie", 0.379}, {"Janet", 0.379},
       {"Frances", 0.368}, {"Catherine", 0.367}, {"Harold", 0.371},
       {"Henry", 0.365},   {"Douglas", 0.367}, {"Joyce", 0.364},
       {"Ann", 0.356},     {"Diane", 0.359},   {"Alice", 0.357},
       {"Jean", 0.351}});
  return d;
}

const Distribution& LastNames() {
  static const Distribution& d = *MakeWeighted(
      "last_names",
      {{"Smith", 1.006},    {"Johnson", 0.810}, {"Williams", 0.699},
       {"Jones", 0.621},    {"Brown", 0.621},   {"Davis", 0.480},
       {"Miller", 0.424},   {"Wilson", 0.339},  {"Moore", 0.312},
       {"Taylor", 0.311},   {"Anderson", 0.311}, {"Thomas", 0.311},
       {"Jackson", 0.310},  {"White", 0.279},   {"Harris", 0.275},
       {"Martin", 0.273},   {"Thompson", 0.269}, {"Garcia", 0.254},
       {"Martinez", 0.234}, {"Robinson", 0.233}, {"Clark", 0.231},
       {"Rodriguez", 0.229}, {"Lewis", 0.226},  {"Lee", 0.220},
       {"Walker", 0.219},   {"Hall", 0.200},    {"Allen", 0.199},
       {"Young", 0.193},    {"Hernandez", 0.192}, {"King", 0.190},
       {"Wright", 0.189},   {"Lopez", 0.187},   {"Hill", 0.187},
       {"Scott", 0.185},    {"Green", 0.183},   {"Adams", 0.174},
       {"Baker", 0.171},    {"Gonzalez", 0.166}, {"Nelson", 0.162},
       {"Carter", 0.162},   {"Mitchell", 0.160}, {"Perez", 0.155},
       {"Roberts", 0.153},  {"Turner", 0.152},  {"Phillips", 0.149},
       {"Campbell", 0.149}, {"Parker", 0.146},  {"Evans", 0.141},
       {"Edwards", 0.139},  {"Collins", 0.137}, {"Stewart", 0.136},
       {"Sanchez", 0.135},  {"Morris", 0.133},  {"Rogers", 0.132},
       {"Reed", 0.130},     {"Cook", 0.130},    {"Morgan", 0.128},
       {"Bell", 0.127},     {"Murphy", 0.126},  {"Bailey", 0.125},
       {"Rivera", 0.124},   {"Cooper", 0.124},  {"Richardson", 0.122},
       {"Cox", 0.122},      {"Howard", 0.121},  {"Ward", 0.120},
       {"Torres", 0.120},   {"Peterson", 0.118}, {"Gray", 0.118},
       {"Ramirez", 0.117},  {"James", 0.116},   {"Watson", 0.115},
       {"Brooks", 0.114},   {"Kelly", 0.113},   {"Sanders", 0.112},
       {"Price", 0.111},    {"Bennett", 0.111}, {"Wood", 0.110},
       {"Barnes", 0.109},   {"Ross", 0.109},    {"Henderson", 0.108},
       {"Coleman", 0.107},  {"Jenkins", 0.106}, {"Perry", 0.106},
       {"Powell", 0.105},   {"Long", 0.105},    {"Patterson", 0.104},
       {"Hughes", 0.104},   {"Flores", 0.103},  {"Washington", 0.103},
       {"Butler", 0.102},   {"Simmons", 0.102}, {"Foster", 0.101},
       {"Gonzales", 0.101}, {"Bryant", 0.100},  {"Alexander", 0.099},
       {"Russell", 0.099},  {"Griffin", 0.098}, {"Diaz", 0.098},
       {"Hayes", 0.097}});
  return d;
}

const Distribution& Salutations() {
  static const Distribution& d = *MakeWeighted(
      "salutations", {{"Mr.", 30},  {"Mrs.", 20}, {"Ms.", 20},
                      {"Miss", 10}, {"Dr.", 15},  {"Sir", 5}});
  return d;
}

const Distribution& Countries() {
  static const Distribution& d = *MakeUniform(
      "countries",
      {"UNITED STATES", "CANADA",      "MEXICO",     "GERMANY",
       "FRANCE",        "UNITED KINGDOM", "JAPAN",   "CHINA",
       "INDIA",         "BRAZIL",      "ITALY",      "SPAIN",
       "AUSTRALIA",     "NETHERLANDS", "SWITZERLAND", "SWEDEN",
       "NORWAY",        "DENMARK",     "IRELAND",    "PORTUGAL"});
  return d;
}

const Distribution& Cities() {
  static const Distribution& d = *MakeWeighted(
      "cities",
      {{"New York", 80},    {"Los Angeles", 38}, {"Chicago", 29},
       {"Houston", 20},     {"Philadelphia", 15}, {"Phoenix", 13},
       {"San Antonio", 11}, {"San Diego", 12},   {"Dallas", 12},
       {"San Jose", 9},     {"Austin", 7},       {"Jacksonville", 7},
       {"Fort Worth", 5},   {"Columbus", 7},     {"Charlotte", 5},
       {"Detroit", 10},     {"El Paso", 6},      {"Memphis", 6},
       {"Seattle", 6},      {"Denver", 6},       {"Boston", 6},
       {"Nashville", 5},    {"Baltimore", 7},    {"Oklahoma City", 5},
       {"Louisville", 4},   {"Portland", 5},     {"Las Vegas", 5},
       {"Milwaukee", 6},    {"Albuquerque", 4},  {"Tucson", 5},
       {"Fresno", 4},       {"Sacramento", 4},   {"Long Beach", 5},
       {"Kansas City", 4},  {"Mesa", 4},         {"Virginia Beach", 4},
       {"Atlanta", 4},      {"Colorado Springs", 4}, {"Omaha", 4},
       {"Raleigh", 3},      {"Miami", 4},        {"Oakland", 4},
       {"Minneapolis", 4},  {"Tulsa", 4},        {"Cleveland", 5},
       {"Wichita", 3},      {"Arlington", 3},    {"New Orleans", 5},
       {"Bakersfield", 2},  {"Tampa", 3},        {"Honolulu", 4},
       {"Aurora", 3},       {"Anaheim", 3},      {"Santa Ana", 3},
       {"St. Louis", 3},    {"Riverside", 3},    {"Corpus Christi", 3},
       {"Lexington", 3},    {"Pittsburgh", 3},   {"Anchorage", 3},
       {"Stockton", 2},     {"Cincinnati", 3},   {"St. Paul", 3},
       {"Toledo", 3},       {"Greensboro", 2},   {"Newark", 3},
       {"Plano", 2},        {"Henderson", 2},    {"Lincoln", 2},
       {"Buffalo", 3},      {"Jersey City", 2},  {"Chula Vista", 2},
       {"Fort Wayne", 2},   {"Orlando", 2},      {"St. Petersburg", 2},
       {"Chandler", 2},     {"Laredo", 2},       {"Norfolk", 2},
       {"Durham", 2},       {"Madison", 2},      {"Lubbock", 2},
       {"Irvine", 2},       {"Winston-Salem", 2}, {"Glendale", 2},
       {"Garland", 2},      {"Hialeah", 2},      {"Reno", 2},
       {"Chesapeake", 2},   {"Gilbert", 2},      {"Baton Rouge", 2},
       {"Irving", 2},       {"Scottsdale", 2},   {"North Las Vegas", 2},
       {"Fremont", 2},      {"Boise", 2},        {"Richmond", 2},
       {"San Bernardino", 2}, {"Birmingham", 2}, {"Spokane", 2},
       {"Rochester", 2}});
  return d;
}

const Distribution& Counties() {
  // The full US county domain has ~1800 entries; the paper (§3.1) notes it
  // is *domain-scaled down* for small tables such as store. We embed a
  // 120-county panel; generators draw a prefix sized to the table (domain
  // scaling) via Distribution::value(index).
  static const Distribution& d = *MakeUniform(
      "counties",
      {"Williamson County", "Walker County",   "Ziebach County",
       "Fairfield County",  "Bronx County",    "Franklin Parish",
       "Mobile County",     "Maricopa County", "San Diego County",
       "Orange County",     "Kings County",    "Harris County",
       "Dallas County",     "Queens County",   "Riverside County",
       "Cook County",       "Clark County",    "King County",
       "Wayne County",      "Tarrant County",  "Santa Clara County",
       "Broward County",    "Bexar County",    "New York County",
       "Philadelphia County", "Alameda County", "Middlesex County",
       "Suffolk County",    "Sacramento County", "Oakland County",
       "Cuyahoga County",   "Hennepin County", "Palm Beach County",
       "Allegheny County",  "Nassau County",   "Hillsborough County",
       "Contra Costa County", "Erie County",   "Salt Lake County",
       "Montgomery County", "Pima County",     "Fulton County",
       "Westchester County", "Milwaukee County", "Fresno County",
       "Shelby County",     "Fairfax County",  "Duval County",
       "Marion County",     "Hartford County", "Bergen County",
       "Pinellas County",   "Honolulu County", "Baltimore County",
       "DuPage County",     "St. Louis County", "Kern County",
       "Travis County",     "Ventura County",  "El Paso County",
       "Gwinnett County",   "Wake County",     "DeKalb County",
       "San Bernardino County", "Macomb County", "Jackson County",
       "Providence County", "Monroe County",   "Jefferson County",
       "Essex County",      "San Francisco County", "Hidalgo County",
       "Snohomish County",  "Worcester County", "Norfolk County",
       "Mecklenburg County", "Multnomah County", "Davidson County",
       "Prince Georges County", "Lake County", "Summit County",
       "Pierce County",     "Bucks County",    "Hamilton County",
       "Oklahoma County",   "Denton County",   "Anne Arundel County",
       "Johnson County",    "Ramsey County",   "Tulsa County",
       {"Douglas County"},  "Collin County",   "Polk County",
       "Delaware County",   "Knox County",     "Arapahoe County",
       "Washtenaw County",  "Lancaster County", "Stark County",
       "Dane County",       "Morris County",   "Union County",
       "Camden County",     "Greenville County", "Richland County",
       "Kanawha County",    "Guilford County", "Spartanburg County",
       "Madison County",    "Onondaga County", "Chester County",
       "Ingham County",     "Sedgwick County", "Butler County",
       "Weber County",      "Genesee County",  "Pueblo County",
       "Cameron County",    "Brevard County",  "Boulder County",
       "Utah County"});
  return d;
}

const Distribution& States() {
  static const Distribution& d = *MakeWeighted(
      "states",
      {{"CA", 34}, {"TX", 21}, {"NY", 19}, {"FL", 16}, {"IL", 12},
       {"PA", 12}, {"OH", 11}, {"MI", 10}, {"NJ", 8},  {"GA", 8},
       {"NC", 8},  {"VA", 7},  {"MA", 6},  {"IN", 6},  {"WA", 6},
       {"TN", 6},  {"MO", 6},  {"WI", 5},  {"MD", 5},  {"AZ", 5},
       {"MN", 5},  {"LA", 4},  {"AL", 4},  {"CO", 4},  {"KY", 4},
       {"SC", 4},  {"OK", 3},  {"OR", 3},  {"CT", 3},  {"IA", 3},
       {"MS", 3},  {"KS", 3},  {"AR", 3},  {"UT", 2},  {"NV", 2},
       {"NM", 2},  {"WV", 2},  {"NE", 2},  {"ID", 1},  {"ME", 1},
       {"NH", 1},  {"HI", 1},  {"RI", 1},  {"MT", 1},  {"DE", 1},
       {"SD", 1},  {"ND", 1},  {"AK", 1},  {"VT", 1},  {"WY", 1}});
  return d;
}

const Distribution& StreetNames() {
  static const Distribution& d = *MakeUniform(
      "street_names",
      {"Main",     "Oak",      "Park",     "Maple",   "Cedar",
       "Elm",      "Washington", "Lake",   "Hill",    "Walnut",
       "Spring",   "North",    "Ridge",    "Church",  "Willow",
       "Mill",     "Sunset",   "Railroad", "Jackson", "West",
       "South",    "Center",   "Highland", "Forest",  "River",
       "Meadow",   "East",     "Chestnut", "Lincoln", "Dogwood",
       "Hickory",  "Franklin", "College",  "Pine",    "Woodland",
       "Sycamore", "Valley",   "Locust",   "Poplar",  "Birch",
       "Cherry",   "Smith",    "Adams",    "Wilson",  "Fourth",
       "Second",   "Third",    "Fifth",    "Sixth",   "Green"});
  return d;
}

const Distribution& StreetTypes() {
  static const Distribution& d = *MakeWeighted(
      "street_types",
      {{"Street", 30}, {"Avenue", 20}, {"Road", 15},  {"Boulevard", 8},
       {"Drive", 10},  {"Lane", 8},    {"Court", 5},  {"Circle", 4},
       {"Way", 5},     {"Parkway", 3}, {"Pkwy", 2},   {"Blvd", 3},
       {"Ave", 5},     {"Dr.", 3},     {"Ln", 2},     {"Cir.", 1},
       {"Ct.", 1},     {"RD", 2},      {"ST", 3},     {"Wy", 1}});
  return d;
}

const Distribution& SuiteQualifiers() {
  static const Distribution& d = *MakeUniform(
      "suite_qualifiers", {"Suite", "Unit", "Apt."});
  return d;
}

const Distribution& LocationTypes() {
  static const Distribution& d = *MakeWeighted(
      "location_types",
      {{"apartment", 30}, {"condo", 20}, {"single family", 50}});
  return d;
}

const Distribution& Genders() {
  static const Distribution& d = *MakeUniform("genders", {"M", "F"});
  return d;
}

const Distribution& MaritalStatuses() {
  static const Distribution& d =
      *MakeUniform("marital_statuses", {"M", "S", "D", "W", "U"});
  return d;
}

const Distribution& EducationStatuses() {
  static const Distribution& d = *MakeUniform(
      "education_statuses",
      {"Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree",
       "Advanced Degree", "Unknown"});
  return d;
}

const Distribution& CreditRatings() {
  static const Distribution& d = *MakeUniform(
      "credit_ratings", {"Low Risk", "Good", "High Risk", "Unknown"});
  return d;
}

const Distribution& BuyPotentials() {
  static const Distribution& d = *MakeUniform(
      "buy_potentials",
      {"0-500", "501-1000", "1001-5000", "5001-10000", ">10000", "Unknown"});
  return d;
}

const Distribution& Categories() {
  static const Distribution& d = *MakeUniform(
      "categories", {"Books", "Children", "Electronics", "Home", "Jewelry",
                     "Men", "Music", "Shoes", "Sports", "Women"});
  return d;
}

const Distribution& ClassesOf(int category_index) {
  // Single inheritance (paper Fig. 5): every class belongs to exactly one
  // category, every brand to exactly one class.
  static const std::vector<const Distribution*>& classes =
      *new std::vector<const Distribution*>{
          MakeUniform("classes_books",
                      {"arts", "business", "computers", "cooking",
                       "entertainments", "fiction", "history", "home repair",
                       "mystery", "parenting", "reference", "romance",
                       "science", "self-help", "sports", "travel"}),
          MakeUniform("classes_children",
                      {"infants", "newborn", "school-uniforms", "toddlers"}),
          MakeUniform("classes_electronics",
                      {"audio", "automotive", "cameras", "camcorders",
                       "disk drives", "dvd/vcr players", "karoke",
                       "memory", "monitors", "musical", "personal",
                       "portable", "scanners", "stereo", "televisions",
                       "wireless"}),
          MakeUniform("classes_home",
                      {"accent", "bathroom", "bedding", "blinds/shades",
                       "curtains/drapes", "decor", "flatware", "furniture",
                       "glassware", "kids", "lighting", "mattresses",
                       "paint", "rugs", "tables", "wallpaper"}),
          MakeUniform("classes_jewelry",
                      {"birdal", "costume", "custom", "diamonds", "estate",
                       "gold", "jewelry boxes", "loose stones", "mens watch",
                       "pearls", "rings", "semi-precious", "womens watch"}),
          MakeUniform("classes_men",
                      {"accessories", "pants", "shirts", "sports-apparel"}),
          MakeUniform("classes_music",
                      {"classical", "country", "pop", "rock"}),
          MakeUniform("classes_shoes",
                      {"athletic", "kids", "mens", "womens"}),
          MakeUniform("classes_sports",
                      {"archery", "athletic shoes", "baseball", "basketball",
                       "camping", "fishing", "fitness", "football", "golf",
                       "guns", "hockey", "optics", "outdoor", "pools",
                       "sailing", "tennis"}),
          MakeUniform("classes_women",
                      {"dresses", "fragrances", "maternity", "swimwear"})};
  return *classes[static_cast<size_t>(category_index) % classes.size()];
}

const Distribution& Colors() {
  static const Distribution& d = *MakeUniform(
      "colors", {"almond",  "antique", "aquamarine", "azure",   "beige",
                 "bisque",  "black",   "blanched",   "blue",    "blush",
                 "brown",   "burlywood", "burnished", "chartreuse",
                 "chiffon", "chocolate", "coral",    "cornflower",
                 "cornsilk", "cream",  "cyan",       "dark",    "deep",
                 "dim",     "dodger",  "drab",       "firebrick",
                 "floral",  "forest",  "frosted",    "gainsboro",
                 "ghost",   "goldenrod", "green",    "grey",    "honeydew",
                 "hot",     "indian",  "ivory",      "khaki",   "lace",
                 "lavender", "lawn",   "lemon",      "light",   "lime",
                 "linen",   "magenta", "maroon",     "medium",  "metallic",
                 "midnight", "mint",   "misty",      "moccasin", "navajo",
                 "navy",    "olive",   "orange",     "orchid",  "pale",
                 "papaya",  "peach",   "peru",       "pink",    "plum",
                 "powder",  "puff",    "purple",     "red",     "rose",
                 "rosy",    "royal",   "saddle",     "salmon",  "sandy",
                 "seashell", "sienna", "sky",        "slate",   "smoke",
                 "snow",    "spring",  "steel",      "tan",     "thistle",
                 "tomato",  "turquoise", "violet",   "wheat",   "white",
                 "yellow"});
  return d;
}

const Distribution& Units() {
  static const Distribution& d = *MakeUniform(
      "units", {"Bunch", "Bundle", "Box",   "Carton", "Case", "Cup",
                "Dozen", "Dram",   "Each",  "Gram",   "Gross", "Lb",
                "N/A",   "Ounce",  "Oz",    "Pallet", "Pound", "Tbl",
                "Ton",   "Tsp",    "Unknown"});
  return d;
}

const Distribution& Containers() {
  static const Distribution& d = *MakeUniform("containers", {"Unknown"});
  return d;
}

const Distribution& Sizes() {
  static const Distribution& d = *MakeUniform(
      "sizes", {"petite", "small", "medium", "large", "extra large",
                "economy", "N/A"});
  return d;
}

const Distribution& BrandSyllables() {
  static const Distribution& d = *MakeUniform(
      "brand_syllables",
      {"amalg", "edu pack", "expor ti", "schola", "import o", "corp",
       "brand", "uni", "maxi", "nameless"});
  return d;
}

const Distribution& ReasonDescriptions() {
  static const Distribution& d = *MakeUniform(
      "reason_descriptions",
      {"Package was damaged",           "Stopped working",
       "Did not get it on time",        "Not the product that was ordred",
       "Parts missing",                 "Does not work with a product that I have",
       "Gift exchange",                 "Did not like the color",
       "Did not like the model",        "Did not like the make",
       "Did not like the warranty",     "No service location in my area",
       "Found a better price in a store", "Found a better extended warranty",
       "Wrong size",                    "Lost my job",
       "Duplicate purchase",            "Not working any more",
       "unauthoized purchase",          "Did not fit",
       "Its is a boy, it needs to be a girl", "Ordered twice by mistake",
       "Changed my mind",               "Arrived too late",
       "Better price on the internet",  "Did not like the style",
       "Did not match the description", "Item was defective",
       "Quality was poor",              "Allergic reaction",
       "Incorrect billing",             "Shipping box was open",
       "Missing accessories",           "Did not need it any more",
       "reason 35",                     "reason 36",
       "reason 37",                     "reason 38",
       "reason 39",                     "reason 40",
       "reason 41",                     "reason 42",
       "reason 43",                     "reason 44",
       "reason 45",                     "reason 46",
       "reason 47",                     "reason 48",
       "reason 49",                     "reason 50",
       "reason 51",                     "reason 52",
       "reason 53",                     "reason 54",
       "reason 55",                     "reason 56",
       "reason 57",                     "reason 58",
       "reason 59",                     "reason 60",
       "reason 61",                     "reason 62",
       "reason 63",                     "reason 64",
       "reason 65",                     "reason 66",
       "reason 67",                     "reason 68",
       "reason 69",                     "reason 70",
       "reason 71",                     "reason 72",
       "reason 73",                     "reason 74",
       "reason 75"});
  return d;
}

const Distribution& ShipModeTypes() {
  static const Distribution& d = *MakeUniform(
      "ship_mode_types",
      {"EXPRESS", "NEXT DAY", "OVERNIGHT", "REGULAR", "TWO DAY"});
  return d;
}

const Distribution& ShipModeCodes() {
  static const Distribution& d = *MakeUniform(
      "ship_mode_codes", {"AIR", "SURFACE", "SEA", "LIBRARY"});
  return d;
}

const Distribution& ShipModeCarriers() {
  static const Distribution& d = *MakeUniform(
      "ship_mode_carriers",
      {"UPS",      "FEDEX",     "AIRBORNE", "USPS",     "DHL",
       "TBS",      "ZHOU",      "ZOUROS",   "MSC",      "LATVIAN",
       "ALLIANCE", "ORIENTAL",  "BARIAN",   "BOXBUNDLES", "GERMA",
       "STAR",     "GREAT EASTERN", "DIAMOND", "RUPEKSA", "HARMSTORF"});
  return d;
}

const Distribution& PromoPurposes() {
  static const Distribution& d = *MakeUniform(
      "promo_purposes", {"Unknown"});
  return d;
}

const Distribution& Departments() {
  static const Distribution& d = *MakeUniform("departments", {"DEPARTMENT"});
  return d;
}

const Distribution& CatalogPageTypes() {
  static const Distribution& d = *MakeUniform(
      "catalog_page_types",
      {"bi-annual", "quarterly", "monthly"});
  return d;
}

const Distribution& WebPageTypes() {
  static const Distribution& d = *MakeUniform(
      "web_page_types", {"ad", "dynamic", "feedback", "general", "order",
                         "protected", "welcome"});
  return d;
}

const Distribution& CallCenterClasses() {
  static const Distribution& d = *MakeUniform(
      "call_center_classes", {"small", "medium", "large"});
  return d;
}

const Distribution& CallCenterHours() {
  static const Distribution& d = *MakeUniform(
      "call_center_hours", {"8AM-4PM", "8AM-12AM", "8AM-8AM"});
  return d;
}

const Distribution& MarketClasses() {
  static const Distribution& d = *MakeUniform(
      "market_classes",
      {"A bit narrow forms matter animals. Consist",
       "Largely blank years put substantially deaf, new",
       "Wrong troops shall work sometimes in a opti",
       "Regional groups ask fully for the elderly dire",
       "Essential hours shall support more than weak",
       "Only dual ministers stand during a chi",
       "Yesterday right forces catch slowly known, new int",
       "Various affairs should show closer sensible f",
       "Increased forces wait most so national institutio",
       "Full, social pounds spin"});
  return d;
}

const Distribution& Words() {
  static const Distribution& d = *MakeUniform(
      "words",
      {"ability", "able",   "account", "act",     "action",  "activity",
       "actual",  "addition", "advantage", "age",  "agreement", "air",
       "amount",  "analysis", "animal", "answer",  "approach", "area",
       "argument", "arm",   "art",     "aspect",  "attention", "attitude",
       "authority", "back", "balance", "bank",    "base",     "basis",
       "bed",     "behaviour", "benefit", "bit",   "black",    "blood",
       "board",   "body",   "book",    "box",     "boy",      "break",
       "budget",  "building", "business", "call",  "capital",  "car",
       "care",    "case",   "cause",   "cell",    "central",  "centre",
       "century", "chain",  "chair",   "chance",  "change",   "chapter",
       "character", "charge", "child", "choice",  "church",   "circle",
       "city",    "claim",  "class",   "client",  "club",     "colour",
       "committee", "community", "company", "computer", "concept",
       "concern", "condition", "conference", "context", "contract",
       "control", "cost",   "countries", "course", "court",   "cup",
       "current", "customer", "damage", "danger",  "data",     "date",
       "daughter", "day",   "deal",    "death",   "decade",   "decision",
       "degree",  "demand", "design",  "detail",  "development", "device",
       "difference", "direction", "discussion", "distance", "doctor",
       "door",    "doubt",  "dream",   "dress",   "drink",    "drive",
       "duty",    "earth",  "economy", "edge",    "education", "effect",
       "effort",  "election", "element", "end",   "energy",   "evidence",
       "example", "exchange", "experience", "expression", "extent",
       "face",    "fact",   "factor",  "family",  "farm",     "father",
       "fear",    "feature", "field",  "figure",  "film",     "finger",
       "fire",    "firm",   "fish",    "floor",   "food",     "foot",
       "force",   "form",   "freedom", "friend",  "front",    "function",
       "future",  "game",   "garden",  "girl",    "glass",    "goal",
       "government", "ground", "group", "growth", "hand",     "head",
       "health",  "heart",  "help",    "hill",    "history",  "home",
       "hope",    "hospital", "hotel", "hour",    "house",    "idea",
       "impact",  "income", "industry", "influence", "information",
       "interest", "issue", "item",    "job",     "kind",     "king",
       "kitchen", "knowledge", "labour", "land",  "language", "law",
       "leader",  "letter", "level",   "library", "life",     "light",
       "line",    "list",   "love",    "machine", "majority", "man",
       "management", "manner", "market", "material", "matter", "meaning",
       "measure", "meeting", "member", "memory",  "metal",    "method",
       "mind",    "minister", "minute", "model",  "moment",   "money",
       "month",   "morning", "mother", "mountain", "mouth",   "movement",
       "music",   "name",   "nation",  "nature",  "need",     "network",
       "news",    "night",  "note",    "number",  "object",   "occasion",
       "offer",   "office", "oil",     "operation", "opinion", "order",
       "organisation", "outcome", "output", "page", "pain",   "paper",
       "parent",  "part",   "party",   "past",    "path",     "pattern",
       "peace",   "people", "performance", "period", "person", "picture",
       "piece",   "place",  "plan",    "plant",   "play",     "point",
       "police",  "policy", "population", "position", "power", "practice",
       "pressure", "price", "principle", "problem", "process", "product",
       "programme", "project", "property", "proportion", "purpose",
       "quality", "question", "range", "rate",    "reason",   "record",
       "region",  "relation", "report", "research", "resource", "response",
       "rest",    "result", "return",  "right",   "risk",     "river",
       "road",    "rock",   "role",    "room",    "rule",     "safety",
       "scale",   "scene",  "scheme",  "school",  "science",  "sea",
       "season",  "seat",   "section", "sector",  "security", "sense",
       "series",  "service", "set",    "shape",   "share",    "show",
       "side",    "sign",   "significance", "site", "situation", "size",
       "skill",   "society", "son",    "sort",    "sound",    "source",
       "south",   "space",  "speaker", "speech",  "sport",    "staff",
       "stage",   "standard", "star",  "start",   "state",    "statement",
       "station", "step",   "stock",   "story",   "strategy", "street",
       "structure", "student", "study", "style",  "subject",  "success",
       "summer",  "support", "surface", "system", "table",    "task",
       "teacher", "team",   "technique", "technology", "term", "test",
       "theory",  "thing",  "thought", "time",    "title",    "top",
       "town",    "trade",  "tradition", "traffic", "training", "travel",
       "treatment", "tree", "trouble", "truth",   "turn",     "type",
       "union",   "unit",   "university", "use",  "user",     "value",
       "variety", "vehicle", "version", "view",   "village",  "voice",
       "water",   "way",    "week",    "weight",  "west",     "wife",
       "wind",    "window", "woman",   "wood",    "word",     "work",
       "world",   "year",   "youth"});
  return d;
}

}  // namespace domains
}  // namespace tpcds
