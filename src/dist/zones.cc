#include "dist/zones.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tpcds {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Days per month in a reference (non-leap) year, used to convert monthly
/// census shares into per-day weights.
constexpr int kMonthDays[12] = {31, 28, 31, 30, 31, 30,
                                31, 31, 30, 31, 30, 31};

std::array<ComparabilityZone, 3> BuildZones() {
  const std::array<double, 12>& census = CensusMonthlyRetailIndex();
  // Aggregate census shares per zone, divide by zone length in days to get
  // a per-day likelihood, then normalise Zone 1 to 1.0.
  struct Span {
    int first, last;
  };
  constexpr Span spans[3] = {{1, 7}, {8, 10}, {11, 12}};
  std::array<double, 3> daily{};
  for (int z = 0; z < 3; ++z) {
    double share = 0.0;
    int days = 0;
    for (int m = spans[z].first; m <= spans[z].last; ++m) {
      share += census[m - 1];
      days += kMonthDays[m - 1];
    }
    daily[z] = share / days;
  }
  double base = daily[0];
  return {ComparabilityZone{1, 1, 7, daily[0] / base},
          ComparabilityZone{2, 8, 10, daily[1] / base},
          ComparabilityZone{3, 11, 12, daily[2] / base}};
}

}  // namespace

const std::array<double, 12>& CensusMonthlyRetailIndex() {
  // Unadjusted 2001 monthly retail sales, department stores (US Census,
  // MRTS kind-of-business 4521; paper ref [12]), in $billions, normalised
  // to shares below. The December holiday spike and the flat spring are
  // the features the TPC-DS step function mimics.
  static const std::array<double, 12>& shares = *[] {
    std::array<double, 12> raw = {15.6, 16.0, 19.1, 18.2, 19.6, 18.4,
                                  17.7, 20.6, 17.8, 19.1, 24.0, 33.0};
    double total = 0.0;
    for (double v : raw) total += v;
    auto* normalised = new std::array<double, 12>();
    for (size_t i = 0; i < raw.size(); ++i) (*normalised)[i] = raw[i] / total;
    return normalised;
  }();
  return shares;
}

const std::array<ComparabilityZone, 3>& ComparabilityZones() {
  static const std::array<ComparabilityZone, 3>& zones =
      *new std::array<ComparabilityZone, 3>(BuildZones());
  return zones;
}

int ZoneOfMonth(int month) {
  assert(month >= 1 && month <= 12);
  if (month <= 7) return 1;
  if (month <= 10) return 2;
  return 3;
}

SalesDateDistribution::SalesDateDistribution(Date begin, Date end)
    : begin_(begin), end_(end) {
  assert(begin <= end);
  int32_t days = end - begin + 1;
  cumulative_.resize(static_cast<size_t>(days));
  const std::array<ComparabilityZone, 3>& zones = ComparabilityZones();
  double running = 0.0;
  for (int32_t i = 0; i < days; ++i) {
    Date d = begin.AddDays(i);
    running += zones[static_cast<size_t>(ZoneOfMonth(d.month()) - 1)]
                   .daily_weight;
    cumulative_[static_cast<size_t>(i)] = running;
  }
}

Date SalesDateDistribution::Pick(RngStream* rng) const {
  double target = rng->NextDouble() * cumulative_.back();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  size_t idx = static_cast<size_t>(it - cumulative_.begin());
  idx = std::min(idx, cumulative_.size() - 1);
  return begin_.AddDays(static_cast<int>(idx));
}

double SalesDateDistribution::WeightOfDate(Date date) const {
  return ComparabilityZones()[static_cast<size_t>(ZoneOfDate(date) - 1)]
      .daily_weight;
}

int SalesDateDistribution::ZoneOfDate(Date date) const {
  return ZoneOfMonth(date.month());
}

double SyntheticGaussianDayWeight(int day_of_year) {
  constexpr double kMu = 200.0;
  constexpr double kSigma = 50.0;
  double x = static_cast<double>(day_of_year);
  return std::exp(-(x - kMu) * (x - kMu) / (2.0 * kSigma * kSigma)) /
         (kSigma * std::sqrt(2.0 * kPi));
}

double SyntheticGaussianWeekWeight(int week) {
  double total = 0.0;
  for (int d = (week - 1) * 7 + 1; d <= week * 7; ++d) {
    total += SyntheticGaussianDayWeight(d);
  }
  return total;
}

}  // namespace tpcds
