#ifndef TPCDS_DIST_ZONES_H_
#define TPCDS_DIST_ZONES_H_

#include <array>
#include <vector>

#include "util/date.h"
#include "util/random.h"

namespace tpcds {

/// The 2001 US-census monthly retail index for department stores
/// (paper Fig. 2, diamond series), normalised so the twelve shares sum
/// to 1. Index 0 = January.
const std::array<double, 12>& CensusMonthlyRetailIndex();

/// One comparability zone: a span of calendar months whose days all carry
/// the same likelihood in the generated data (paper §3.2).
struct ComparabilityZone {
  int zone_id;       // 1..3
  int first_month;   // 1-based, inclusive
  int last_month;    // 1-based, inclusive
  double daily_weight;  // relative likelihood of each day in the zone
};

/// TPC-DS's step-function approximation of the census curve (paper Fig. 2,
/// square series): Zone 1 = January–July (low), Zone 2 = August–October
/// (medium), Zone 3 = November–December (high). Daily weights are derived
/// from the census index and normalised so Zone 1 has weight 1.
const std::array<ComparabilityZone, 3>& ComparabilityZones();

/// Zone id (1..3) containing the given month (1..12).
int ZoneOfMonth(int month);

/// Generates sale dates over a multi-year window following the zoned step
/// distribution: uniform within each zone, stepped across zones. Query
/// substitutions that stay inside one zone therefore qualify a predictable
/// number of rows — the comparability property (paper §3.2, Fig. 4).
class SalesDateDistribution {
 public:
  /// Window is inclusive on both ends.
  SalesDateDistribution(Date begin, Date end);

  /// Picks a sale date; exactly one RNG draw.
  Date Pick(RngStream* rng) const;

  /// Relative likelihood of a specific day (the zone's daily weight).
  double WeightOfDate(Date date) const;

  /// Zone id (1..3) of a date.
  int ZoneOfDate(Date date) const;

  Date begin() const { return begin_; }
  Date end() const { return end_; }

 private:
  Date begin_;
  Date end_;
  std::vector<double> cumulative_;  // per-day cumulative weight
};

/// The purely synthetic alternative the paper contrasts with (Fig. 3):
/// sales-by-day-of-year following a Gaussian with mu=200, sigma=50.
/// Returns the relative weight of the given day-of-year (1..366).
double SyntheticGaussianDayWeight(int day_of_year);

/// Aggregates SyntheticGaussianDayWeight over a week (1..53) to reproduce
/// the weekly series plotted in Fig. 3.
double SyntheticGaussianWeekWeight(int week);

}  // namespace tpcds

#endif  // TPCDS_DIST_ZONES_H_
