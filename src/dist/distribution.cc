#include "dist/distribution.h"

#include <algorithm>
#include <cassert>

namespace tpcds {

Distribution::Distribution(
    std::string name, std::vector<std::pair<std::string, double>> entries)
    : name_(std::move(name)) {
  values_.reserve(entries.size());
  weights_.reserve(entries.size());
  cumulative_.reserve(entries.size());
  double running = 0.0;
  for (auto& [value, weight] : entries) {
    assert(weight >= 0.0);
    values_.push_back(std::move(value));
    weights_.push_back(weight);
    running += weight;
    cumulative_.push_back(running);
  }
}

Distribution Distribution::Uniform(std::string name,
                                   std::vector<std::string> values) {
  std::vector<std::pair<std::string, double>> entries;
  entries.reserve(values.size());
  for (std::string& v : values) entries.emplace_back(std::move(v), 1.0);
  return Distribution(std::move(name), std::move(entries));
}

int Distribution::IndexOf(const std::string& value) const {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == value) return static_cast<int>(i);
  }
  return -1;
}

size_t Distribution::PickWeightedIndex(RngStream* rng) const {
  assert(!values_.empty());
  double total = cumulative_.back();
  double target = rng->NextDouble() * total;
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  size_t idx = static_cast<size_t>(it - cumulative_.begin());
  return std::min(idx, values_.size() - 1);
}

const std::string& Distribution::PickWeighted(RngStream* rng) const {
  return values_[PickWeightedIndex(rng)];
}

const std::string& Distribution::PickUniform(RngStream* rng) const {
  return values_[PickUniformIndex(rng)];
}

}  // namespace tpcds
