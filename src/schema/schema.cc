#include "schema/schema.h"

#include <set>
#include <utility>

#include "util/string_util.h"

namespace tpcds {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kIdentifier:
      return "identifier";
    case ColumnType::kInteger:
      return "integer";
    case ColumnType::kDecimal:
      return "decimal";
    case ColumnType::kDate:
      return "date";
    case ColumnType::kChar:
      return "char";
    case ColumnType::kVarchar:
      return "varchar";
  }
  return "unknown";
}

const char* ColEncodingToString(ColEncoding encoding) {
  switch (encoding) {
    case ColEncoding::kPlain:
      return "plain";
    case ColEncoding::kDict:
      return "dict";
    case ColEncoding::kRle:
      return "rle";
    case ColEncoding::kFor:
      return "for";
  }
  return "unknown";
}

int ColumnDef::MaxFlatWidth() const {
  switch (type) {
    case ColumnType::kIdentifier:
      return 11;  // surrogate keys stay below 10^11 at SF 100000
    case ColumnType::kInteger:
      return 11;
    case ColumnType::kDecimal:
      return 12;  // "-123456.78" class values
    case ColumnType::kDate:
      return 10;  // YYYY-MM-DD
    case ColumnType::kChar:
    case ColumnType::kVarchar:
      return length;
  }
  return 0;
}

int TableDef::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

int TableDef::DeclaredMaxRowBytes() const {
  int bytes = 1;  // newline
  for (const ColumnDef& c : columns) bytes += c.MaxFlatWidth() + 1;
  return bytes;
}

const TableDef* Schema::FindTable(const std::string& name) const {
  int idx = TableIndex(name);
  return idx < 0 ? nullptr : &tables_[idx];
}

int Schema::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Schema::NumFactTables() const {
  size_t n = 0;
  for (const TableDef& t : tables_) n += t.is_fact() ? 1 : 0;
  return n;
}

size_t Schema::NumDimensionTables() const {
  return tables_.size() - NumFactTables();
}

Status Schema::Validate() const {
  std::set<std::string> table_names;
  for (const TableDef& t : tables_) {
    if (!table_names.insert(t.name).second) {
      return Status::Internal("duplicate table name: " + t.name);
    }
    std::set<std::string> column_names;
    for (const ColumnDef& c : t.columns) {
      if (!column_names.insert(c.name).second) {
        return Status::Internal("duplicate column " + t.name + "." + c.name);
      }
      if (!StartsWith(c.name, t.abbrev + "_") &&
          !StartsWith(c.name, t.abbrev)) {
        return Status::Internal("column prefix mismatch: " + t.name + "." +
                                c.name);
      }
    }
    if (t.primary_key.empty()) {
      return Status::Internal("table without primary key: " + t.name);
    }
    for (const std::string& pk : t.primary_key) {
      if (!t.HasColumn(pk)) {
        return Status::Internal("primary-key column missing: " + t.name +
                                "." + pk);
      }
    }
  }
  for (const TableDef& t : tables_) {
    for (const ForeignKeyDef& fk : t.foreign_keys) {
      const TableDef* target = FindTable(fk.referenced_table);
      if (target == nullptr) {
        return Status::Internal("FK from " + t.name +
                                " references unknown table " +
                                fk.referenced_table);
      }
      if (fk.columns.size() != fk.referenced_columns.size() ||
          fk.columns.empty()) {
        return Status::Internal("malformed FK on " + t.name);
      }
      for (const std::string& c : fk.columns) {
        if (!t.HasColumn(c)) {
          return Status::Internal("FK column missing: " + t.name + "." + c);
        }
      }
      if (fk.referenced_columns != target->primary_key) {
        return Status::Internal("FK from " + t.name + " to " + target->name +
                                " does not reference its primary key");
      }
    }
  }
  return Status::OK();
}

namespace {

/// Fluent helper that keeps the 425-column catalog definition readable.
class TableBuilder {
 public:
  TableBuilder(std::string name, std::string abbrev, TableClass cls,
               MaintenanceClass maint, SchemaPart part) {
    def_.name = std::move(name);
    def_.abbrev = std::move(abbrev);
    def_.table_class = cls;
    def_.maintenance = maint;
    def_.part = part;
  }

  TableBuilder& Key(const std::string& n) {
    return Add(n, ColumnType::kIdentifier, 0);
  }
  TableBuilder& Int(const std::string& n) {
    return Add(n, ColumnType::kInteger, 0);
  }
  TableBuilder& Dec(const std::string& n) {
    return Add(n, ColumnType::kDecimal, 0);
  }
  TableBuilder& Dt(const std::string& n) {
    return Add(n, ColumnType::kDate, 0);
  }
  TableBuilder& Ch(const std::string& n, int len) {
    return Add(n, ColumnType::kChar, len);
  }
  TableBuilder& Vc(const std::string& n, int len) {
    return Add(n, ColumnType::kVarchar, len);
  }

  TableBuilder& Pk(std::vector<std::string> cols) {
    def_.primary_key = std::move(cols);
    for (const std::string& c : def_.primary_key) {
      int idx = def_.ColumnIndex(c);
      if (idx >= 0) def_.columns[idx].nullable = false;
    }
    return *this;
  }

  /// Single-column FK to a dimension's single-column surrogate key.
  TableBuilder& Fk(const std::string& col, const std::string& table,
                   const std::string& ref_col) {
    def_.foreign_keys.push_back({{col}, table, {ref_col}});
    return *this;
  }

  TableBuilder& FkComposite(std::vector<std::string> cols,
                            const std::string& table,
                            std::vector<std::string> ref_cols) {
    def_.foreign_keys.push_back(
        {std::move(cols), table, std::move(ref_cols)});
    return *this;
  }

  TableDef Build() { return std::move(def_); }

 private:
  TableBuilder& Add(const std::string& n, ColumnType t, int len) {
    def_.columns.push_back(ColumnDef{n, t, len, /*nullable=*/true});
    return *this;
  }

  TableDef def_;
};

/// Adds the shared street-address column block (used by customer_address,
/// store, warehouse, call_center, web_site).
TableBuilder& AddAddressBlock(TableBuilder& b, const std::string& prefix) {
  b.Ch(prefix + "_street_number", 10)
      .Vc(prefix + "_street_name", 60)
      .Ch(prefix + "_street_type", 15)
      .Ch(prefix + "_suite_number", 10)
      .Vc(prefix + "_city", 60)
      .Vc(prefix + "_county", 30)
      .Ch(prefix + "_state", 2)
      .Ch(prefix + "_zip", 10)
      .Vc(prefix + "_country", 20)
      .Dec(prefix + "_gmt_offset");
  return b;
}

Schema BuildTpcdsSchema() {
  Schema schema;
  std::vector<TableDef>* tables = schema.mutable_tables();

  // ---------------------------------------------------------------- facts
  {
    TableBuilder b("store_sales", "ss", TableClass::kFact,
                   MaintenanceClass::kFact, SchemaPart::kAdHoc);
    b.Key("ss_sold_date_sk")
        .Key("ss_sold_time_sk")
        .Key("ss_item_sk")
        .Key("ss_customer_sk")
        .Key("ss_cdemo_sk")
        .Key("ss_hdemo_sk")
        .Key("ss_addr_sk")
        .Key("ss_store_sk")
        .Key("ss_promo_sk")
        .Key("ss_ticket_number")
        .Int("ss_quantity")
        .Dec("ss_wholesale_cost")
        .Dec("ss_list_price")
        .Dec("ss_sales_price")
        .Dec("ss_ext_discount_amt")
        .Dec("ss_ext_sales_price")
        .Dec("ss_ext_wholesale_cost")
        .Dec("ss_ext_list_price")
        .Dec("ss_ext_tax")
        .Dec("ss_coupon_amt")
        .Dec("ss_net_paid")
        .Dec("ss_net_paid_inc_tax")
        .Dec("ss_net_profit")
        .Pk({"ss_item_sk", "ss_ticket_number"})
        .Fk("ss_sold_date_sk", "date_dim", "d_date_sk")
        .Fk("ss_sold_time_sk", "time_dim", "t_time_sk")
        .Fk("ss_item_sk", "item", "i_item_sk")
        .Fk("ss_customer_sk", "customer", "c_customer_sk")
        .Fk("ss_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("ss_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("ss_addr_sk", "customer_address", "ca_address_sk")
        .Fk("ss_store_sk", "store", "s_store_sk")
        .Fk("ss_promo_sk", "promotion", "p_promo_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("store_returns", "sr", TableClass::kFact,
                   MaintenanceClass::kFact, SchemaPart::kAdHoc);
    b.Key("sr_returned_date_sk")
        .Key("sr_return_time_sk")
        .Key("sr_item_sk")
        .Key("sr_customer_sk")
        .Key("sr_cdemo_sk")
        .Key("sr_hdemo_sk")
        .Key("sr_addr_sk")
        .Key("sr_store_sk")
        .Key("sr_reason_sk")
        .Key("sr_ticket_number")
        .Int("sr_return_quantity")
        .Dec("sr_return_amt")
        .Dec("sr_return_tax")
        .Dec("sr_return_amt_inc_tax")
        .Dec("sr_fee")
        .Dec("sr_return_ship_cost")
        .Dec("sr_refunded_cash")
        .Dec("sr_reversed_charge")
        .Dec("sr_store_credit")
        .Dec("sr_net_loss")
        .Pk({"sr_item_sk", "sr_ticket_number"})
        .Fk("sr_returned_date_sk", "date_dim", "d_date_sk")
        .Fk("sr_return_time_sk", "time_dim", "t_time_sk")
        .Fk("sr_item_sk", "item", "i_item_sk")
        .Fk("sr_customer_sk", "customer", "c_customer_sk")
        .Fk("sr_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("sr_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("sr_addr_sk", "customer_address", "ca_address_sk")
        .Fk("sr_store_sk", "store", "s_store_sk")
        .Fk("sr_reason_sk", "reason", "r_reason_sk")
        // Returns join back to the originating sale (paper §2.2:
        // fact-to-fact joins via Ticket Number + Item_sk).
        .FkComposite({"sr_item_sk", "sr_ticket_number"}, "store_sales",
                     {"ss_item_sk", "ss_ticket_number"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("catalog_sales", "cs", TableClass::kFact,
                   MaintenanceClass::kFact, SchemaPart::kReporting);
    b.Key("cs_sold_date_sk")
        .Key("cs_sold_time_sk")
        .Key("cs_ship_date_sk")
        .Key("cs_bill_customer_sk")
        .Key("cs_bill_cdemo_sk")
        .Key("cs_bill_hdemo_sk")
        .Key("cs_bill_addr_sk")
        .Key("cs_ship_customer_sk")
        .Key("cs_ship_cdemo_sk")
        .Key("cs_ship_hdemo_sk")
        .Key("cs_ship_addr_sk")
        .Key("cs_call_center_sk")
        .Key("cs_catalog_page_sk")
        .Key("cs_ship_mode_sk")
        .Key("cs_warehouse_sk")
        .Key("cs_item_sk")
        .Key("cs_promo_sk")
        .Key("cs_order_number")
        .Int("cs_quantity")
        .Dec("cs_wholesale_cost")
        .Dec("cs_list_price")
        .Dec("cs_sales_price")
        .Dec("cs_ext_discount_amt")
        .Dec("cs_ext_sales_price")
        .Dec("cs_ext_wholesale_cost")
        .Dec("cs_ext_list_price")
        .Dec("cs_ext_tax")
        .Dec("cs_coupon_amt")
        .Dec("cs_ext_ship_cost")
        .Dec("cs_net_paid")
        .Dec("cs_net_paid_inc_tax")
        .Dec("cs_net_paid_inc_ship")
        .Dec("cs_net_paid_inc_ship_tax")
        .Dec("cs_net_profit")
        .Pk({"cs_item_sk", "cs_order_number"})
        .Fk("cs_sold_date_sk", "date_dim", "d_date_sk")
        .Fk("cs_sold_time_sk", "time_dim", "t_time_sk")
        .Fk("cs_ship_date_sk", "date_dim", "d_date_sk")
        .Fk("cs_bill_customer_sk", "customer", "c_customer_sk")
        .Fk("cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("cs_bill_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("cs_bill_addr_sk", "customer_address", "ca_address_sk")
        .Fk("cs_ship_customer_sk", "customer", "c_customer_sk")
        .Fk("cs_ship_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("cs_ship_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("cs_ship_addr_sk", "customer_address", "ca_address_sk")
        .Fk("cs_call_center_sk", "call_center", "cc_call_center_sk")
        .Fk("cs_catalog_page_sk", "catalog_page", "cp_catalog_page_sk")
        .Fk("cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk")
        .Fk("cs_warehouse_sk", "warehouse", "w_warehouse_sk")
        .Fk("cs_item_sk", "item", "i_item_sk")
        .Fk("cs_promo_sk", "promotion", "p_promo_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("catalog_returns", "cr", TableClass::kFact,
                   MaintenanceClass::kFact, SchemaPart::kReporting);
    b.Key("cr_returned_date_sk")
        .Key("cr_returned_time_sk")
        .Key("cr_item_sk")
        .Key("cr_refunded_customer_sk")
        .Key("cr_refunded_cdemo_sk")
        .Key("cr_refunded_hdemo_sk")
        .Key("cr_refunded_addr_sk")
        .Key("cr_returning_customer_sk")
        .Key("cr_returning_cdemo_sk")
        .Key("cr_returning_hdemo_sk")
        .Key("cr_returning_addr_sk")
        .Key("cr_call_center_sk")
        .Key("cr_catalog_page_sk")
        .Key("cr_ship_mode_sk")
        .Key("cr_warehouse_sk")
        .Key("cr_reason_sk")
        .Key("cr_order_number")
        .Int("cr_return_quantity")
        .Dec("cr_return_amount")
        .Dec("cr_return_tax")
        .Dec("cr_return_amt_inc_tax")
        .Dec("cr_fee")
        .Dec("cr_return_ship_cost")
        .Dec("cr_refunded_cash")
        .Dec("cr_reversed_charge")
        .Dec("cr_store_credit")
        .Dec("cr_net_loss")
        .Pk({"cr_item_sk", "cr_order_number"})
        .Fk("cr_returned_date_sk", "date_dim", "d_date_sk")
        .Fk("cr_returned_time_sk", "time_dim", "t_time_sk")
        .Fk("cr_item_sk", "item", "i_item_sk")
        .Fk("cr_refunded_customer_sk", "customer", "c_customer_sk")
        .Fk("cr_refunded_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("cr_refunded_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("cr_refunded_addr_sk", "customer_address", "ca_address_sk")
        .Fk("cr_returning_customer_sk", "customer", "c_customer_sk")
        .Fk("cr_returning_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("cr_returning_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("cr_returning_addr_sk", "customer_address", "ca_address_sk")
        .Fk("cr_call_center_sk", "call_center", "cc_call_center_sk")
        .Fk("cr_catalog_page_sk", "catalog_page", "cp_catalog_page_sk")
        .Fk("cr_ship_mode_sk", "ship_mode", "sm_ship_mode_sk")
        .Fk("cr_warehouse_sk", "warehouse", "w_warehouse_sk")
        .Fk("cr_reason_sk", "reason", "r_reason_sk")
        .FkComposite({"cr_item_sk", "cr_order_number"}, "catalog_sales",
                     {"cs_item_sk", "cs_order_number"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("web_sales", "ws", TableClass::kFact,
                   MaintenanceClass::kFact, SchemaPart::kAdHoc);
    b.Key("ws_sold_date_sk")
        .Key("ws_sold_time_sk")
        .Key("ws_ship_date_sk")
        .Key("ws_item_sk")
        .Key("ws_bill_customer_sk")
        .Key("ws_bill_cdemo_sk")
        .Key("ws_bill_hdemo_sk")
        .Key("ws_bill_addr_sk")
        .Key("ws_ship_customer_sk")
        .Key("ws_ship_cdemo_sk")
        .Key("ws_ship_hdemo_sk")
        .Key("ws_ship_addr_sk")
        .Key("ws_web_page_sk")
        .Key("ws_web_site_sk")
        .Key("ws_ship_mode_sk")
        .Key("ws_warehouse_sk")
        .Key("ws_promo_sk")
        .Key("ws_order_number")
        .Int("ws_quantity")
        .Dec("ws_wholesale_cost")
        .Dec("ws_list_price")
        .Dec("ws_sales_price")
        .Dec("ws_ext_discount_amt")
        .Dec("ws_ext_sales_price")
        .Dec("ws_ext_wholesale_cost")
        .Dec("ws_ext_list_price")
        .Dec("ws_ext_tax")
        .Dec("ws_coupon_amt")
        .Dec("ws_ext_ship_cost")
        .Dec("ws_net_paid")
        .Dec("ws_net_paid_inc_tax")
        .Dec("ws_net_paid_inc_ship")
        .Dec("ws_net_paid_inc_ship_tax")
        .Dec("ws_net_profit")
        .Pk({"ws_item_sk", "ws_order_number"})
        .Fk("ws_sold_date_sk", "date_dim", "d_date_sk")
        .Fk("ws_sold_time_sk", "time_dim", "t_time_sk")
        .Fk("ws_ship_date_sk", "date_dim", "d_date_sk")
        .Fk("ws_item_sk", "item", "i_item_sk")
        .Fk("ws_bill_customer_sk", "customer", "c_customer_sk")
        .Fk("ws_bill_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("ws_bill_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("ws_bill_addr_sk", "customer_address", "ca_address_sk")
        .Fk("ws_ship_customer_sk", "customer", "c_customer_sk")
        .Fk("ws_ship_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("ws_ship_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("ws_ship_addr_sk", "customer_address", "ca_address_sk")
        .Fk("ws_web_page_sk", "web_page", "wp_web_page_sk")
        .Fk("ws_web_site_sk", "web_site", "web_site_sk")
        .Fk("ws_ship_mode_sk", "ship_mode", "sm_ship_mode_sk")
        .Fk("ws_warehouse_sk", "warehouse", "w_warehouse_sk")
        .Fk("ws_promo_sk", "promotion", "p_promo_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("web_returns", "wr", TableClass::kFact,
                   MaintenanceClass::kFact, SchemaPart::kAdHoc);
    b.Key("wr_returned_date_sk")
        .Key("wr_returned_time_sk")
        .Key("wr_item_sk")
        .Key("wr_refunded_customer_sk")
        .Key("wr_refunded_cdemo_sk")
        .Key("wr_refunded_hdemo_sk")
        .Key("wr_refunded_addr_sk")
        .Key("wr_returning_customer_sk")
        .Key("wr_returning_cdemo_sk")
        .Key("wr_returning_hdemo_sk")
        .Key("wr_returning_addr_sk")
        .Key("wr_web_page_sk")
        .Key("wr_reason_sk")
        .Key("wr_order_number")
        .Int("wr_return_quantity")
        .Dec("wr_return_amt")
        .Dec("wr_return_tax")
        .Dec("wr_return_amt_inc_tax")
        .Dec("wr_fee")
        .Dec("wr_return_ship_cost")
        .Dec("wr_refunded_cash")
        .Dec("wr_reversed_charge")
        .Dec("wr_account_credit")
        .Dec("wr_net_loss")
        .Pk({"wr_item_sk", "wr_order_number"})
        .Fk("wr_returned_date_sk", "date_dim", "d_date_sk")
        .Fk("wr_returned_time_sk", "time_dim", "t_time_sk")
        .Fk("wr_item_sk", "item", "i_item_sk")
        .Fk("wr_refunded_customer_sk", "customer", "c_customer_sk")
        .Fk("wr_refunded_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("wr_refunded_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("wr_refunded_addr_sk", "customer_address", "ca_address_sk")
        .Fk("wr_returning_customer_sk", "customer", "c_customer_sk")
        .Fk("wr_returning_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("wr_returning_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("wr_returning_addr_sk", "customer_address", "ca_address_sk")
        .Fk("wr_web_page_sk", "web_page", "wp_web_page_sk")
        .Fk("wr_reason_sk", "reason", "r_reason_sk")
        .FkComposite({"wr_item_sk", "wr_order_number"}, "web_sales",
                     {"ws_item_sk", "ws_order_number"});
    tables->push_back(b.Build());
  }
  {
    // Inventory is shared between the catalog and web channels (paper §2.2);
    // the catalog channel is the reporting part, so inventory sits there.
    TableBuilder b("inventory", "inv", TableClass::kFact,
                   MaintenanceClass::kFact, SchemaPart::kReporting);
    b.Key("inv_date_sk")
        .Key("inv_item_sk")
        .Key("inv_warehouse_sk")
        .Int("inv_quantity_on_hand")
        .Pk({"inv_date_sk", "inv_item_sk", "inv_warehouse_sk"})
        .Fk("inv_date_sk", "date_dim", "d_date_sk")
        .Fk("inv_item_sk", "item", "i_item_sk")
        .Fk("inv_warehouse_sk", "warehouse", "w_warehouse_sk");
    tables->push_back(b.Build());
  }

  // ----------------------------------------------------------- dimensions
  {
    TableBuilder b("date_dim", "d", TableClass::kDimension,
                   MaintenanceClass::kStatic, SchemaPart::kCommon);
    b.Key("d_date_sk")
        .Ch("d_date_id", 16)
        .Dt("d_date")
        .Int("d_month_seq")
        .Int("d_week_seq")
        .Int("d_quarter_seq")
        .Int("d_year")
        .Int("d_dow")
        .Int("d_moy")
        .Int("d_dom")
        .Int("d_qoy")
        .Int("d_fy_year")
        .Int("d_fy_quarter_seq")
        .Int("d_fy_week_seq")
        .Ch("d_day_name", 9)
        .Ch("d_quarter_name", 6)
        .Ch("d_holiday", 1)
        .Ch("d_weekend", 1)
        .Ch("d_following_holiday", 1)
        .Int("d_first_dom")
        .Int("d_last_dom")
        .Int("d_same_day_ly")
        .Int("d_same_day_lq")
        .Ch("d_current_day", 1)
        .Ch("d_current_week", 1)
        .Ch("d_current_month", 1)
        .Ch("d_current_quarter", 1)
        .Ch("d_current_year", 1)
        .Pk({"d_date_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("time_dim", "t", TableClass::kDimension,
                   MaintenanceClass::kStatic, SchemaPart::kCommon);
    b.Key("t_time_sk")
        .Ch("t_time_id", 16)
        .Int("t_time")
        .Int("t_hour")
        .Int("t_minute")
        .Int("t_second")
        .Ch("t_am_pm", 2)
        .Ch("t_shift", 20)
        .Ch("t_sub_shift", 20)
        .Ch("t_meal_time", 20)
        .Pk({"t_time_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("item", "i", TableClass::kDimension,
                   MaintenanceClass::kHistory, SchemaPart::kCommon);
    b.Key("i_item_sk")
        .Ch("i_item_id", 16)
        .Dt("i_rec_start_date")
        .Dt("i_rec_end_date")
        .Vc("i_item_desc", 200)
        .Dec("i_current_price")
        .Dec("i_wholesale_cost")
        .Int("i_brand_id")
        .Ch("i_brand", 50)
        .Int("i_class_id")
        .Ch("i_class", 50)
        .Int("i_category_id")
        .Ch("i_category", 50)
        .Int("i_manufact_id")
        .Ch("i_manufact", 50)
        .Ch("i_size", 20)
        .Ch("i_formulation", 20)
        .Ch("i_color", 20)
        .Ch("i_units", 10)
        .Ch("i_container", 10)
        .Int("i_manager_id")
        .Ch("i_product_name", 50)
        .Pk({"i_item_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("customer", "c", TableClass::kDimension,
                   MaintenanceClass::kNonHistory, SchemaPart::kCommon);
    b.Key("c_customer_sk")
        .Ch("c_customer_id", 16)
        .Key("c_current_cdemo_sk")
        .Key("c_current_hdemo_sk")
        .Key("c_current_addr_sk")
        .Key("c_first_shipto_date_sk")
        .Key("c_first_sales_date_sk")
        .Ch("c_salutation", 10)
        .Ch("c_first_name", 20)
        .Ch("c_last_name", 30)
        .Ch("c_preferred_cust_flag", 1)
        .Int("c_birth_day")
        .Int("c_birth_month")
        .Int("c_birth_year")
        .Vc("c_birth_country", 20)
        .Ch("c_login", 13)
        .Ch("c_email_address", 50)
        .Key("c_last_review_date_sk")
        .Pk({"c_customer_sk"})
        .Fk("c_current_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .Fk("c_current_hdemo_sk", "household_demographics", "hd_demo_sk")
        .Fk("c_current_addr_sk", "customer_address", "ca_address_sk")
        .Fk("c_first_shipto_date_sk", "date_dim", "d_date_sk")
        .Fk("c_first_sales_date_sk", "date_dim", "d_date_sk")
        .Fk("c_last_review_date_sk", "date_dim", "d_date_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("customer_address", "ca", TableClass::kDimension,
                   MaintenanceClass::kNonHistory, SchemaPart::kCommon);
    b.Key("ca_address_sk").Ch("ca_address_id", 16);
    AddAddressBlock(b, "ca");
    b.Ch("ca_location_type", 20).Pk({"ca_address_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("customer_demographics", "cd", TableClass::kDimension,
                   MaintenanceClass::kStatic, SchemaPart::kCommon);
    b.Key("cd_demo_sk")
        .Ch("cd_gender", 1)
        .Ch("cd_marital_status", 1)
        .Ch("cd_education_status", 20)
        .Int("cd_purchase_estimate")
        .Ch("cd_credit_rating", 10)
        .Int("cd_dep_count")
        .Int("cd_dep_employed_count")
        .Int("cd_dep_college_count")
        .Pk({"cd_demo_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("household_demographics", "hd", TableClass::kDimension,
                   MaintenanceClass::kStatic, SchemaPart::kCommon);
    b.Key("hd_demo_sk")
        .Key("hd_income_band_sk")
        .Ch("hd_buy_potential", 15)
        .Int("hd_dep_count")
        .Int("hd_vehicle_count")
        .Pk({"hd_demo_sk"})
        .Fk("hd_income_band_sk", "income_band", "ib_income_band_sk");
    tables->push_back(b.Build());
  }
  {
    // Income Band: the innermost snowflake layer (normalised out of
    // household demographics, paper Fig. 1).
    TableBuilder b("income_band", "ib", TableClass::kDimension,
                   MaintenanceClass::kStatic, SchemaPart::kCommon);
    b.Key("ib_income_band_sk")
        .Int("ib_lower_bound")
        .Int("ib_upper_bound")
        .Pk({"ib_income_band_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("store", "s", TableClass::kDimension,
                   MaintenanceClass::kHistory, SchemaPart::kAdHoc);
    b.Key("s_store_sk")
        .Ch("s_store_id", 16)
        .Dt("s_rec_start_date")
        .Dt("s_rec_end_date")
        .Key("s_closed_date_sk")
        .Vc("s_store_name", 50)
        .Int("s_number_employees")
        .Int("s_floor_space")
        .Ch("s_hours", 20)
        .Vc("s_manager", 40)
        .Int("s_market_id")
        .Vc("s_geography_class", 100)
        .Vc("s_market_desc", 100)
        .Vc("s_market_manager", 40)
        .Int("s_division_id")
        .Vc("s_division_name", 50)
        .Int("s_company_id")
        .Vc("s_company_name", 50);
    AddAddressBlock(b, "s");
    b.Dec("s_tax_percentage")
        .Pk({"s_store_sk"})
        .Fk("s_closed_date_sk", "date_dim", "d_date_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("promotion", "p", TableClass::kDimension,
                   MaintenanceClass::kNonHistory, SchemaPart::kCommon);
    b.Key("p_promo_sk")
        .Ch("p_promo_id", 16)
        .Key("p_start_date_sk")
        .Key("p_end_date_sk")
        .Key("p_item_sk")
        .Dec("p_cost")
        .Int("p_response_target")
        .Ch("p_promo_name", 50)
        .Ch("p_channel_dmail", 1)
        .Ch("p_channel_email", 1)
        .Ch("p_channel_catalog", 1)
        .Ch("p_channel_tv", 1)
        .Ch("p_channel_radio", 1)
        .Ch("p_channel_press", 1)
        .Ch("p_channel_event", 1)
        .Ch("p_channel_demo", 1)
        .Vc("p_channel_details", 100)
        .Ch("p_purpose", 15)
        .Ch("p_discount_active", 1)
        .Pk({"p_promo_sk"})
        .Fk("p_start_date_sk", "date_dim", "d_date_sk")
        .Fk("p_end_date_sk", "date_dim", "d_date_sk")
        .Fk("p_item_sk", "item", "i_item_sk");
    tables->push_back(b.Build());
  }
  {
    // Reason participates only in the return fact tables (paper Fig. 1).
    TableBuilder b("reason", "r", TableClass::kDimension,
                   MaintenanceClass::kStatic, SchemaPart::kCommon);
    b.Key("r_reason_sk")
        .Ch("r_reason_id", 16)
        .Ch("r_reason_desc", 100)
        .Pk({"r_reason_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("ship_mode", "sm", TableClass::kDimension,
                   MaintenanceClass::kStatic, SchemaPart::kCommon);
    b.Key("sm_ship_mode_sk")
        .Ch("sm_ship_mode_id", 16)
        .Ch("sm_type", 30)
        .Ch("sm_code", 10)
        .Ch("sm_carrier", 20)
        .Ch("sm_contract", 20)
        .Pk({"sm_ship_mode_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("warehouse", "w", TableClass::kDimension,
                   MaintenanceClass::kNonHistory, SchemaPart::kCommon);
    b.Key("w_warehouse_sk")
        .Ch("w_warehouse_id", 16)
        .Vc("w_warehouse_name", 20)
        .Int("w_warehouse_sq_ft");
    AddAddressBlock(b, "w");
    b.Pk({"w_warehouse_sk"});
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("call_center", "cc", TableClass::kDimension,
                   MaintenanceClass::kHistory, SchemaPart::kReporting);
    b.Key("cc_call_center_sk")
        .Ch("cc_call_center_id", 16)
        .Dt("cc_rec_start_date")
        .Dt("cc_rec_end_date")
        .Key("cc_closed_date_sk")
        .Key("cc_open_date_sk")
        .Vc("cc_name", 50)
        .Vc("cc_class", 50)
        .Int("cc_employees")
        .Int("cc_sq_ft")
        .Ch("cc_hours", 20)
        .Vc("cc_manager", 40)
        .Int("cc_mkt_id")
        .Ch("cc_mkt_class", 50)
        .Vc("cc_mkt_desc", 100)
        .Vc("cc_market_manager", 40)
        .Int("cc_division")
        .Vc("cc_division_name", 50)
        .Int("cc_company")
        .Ch("cc_company_name", 50);
    AddAddressBlock(b, "cc");
    b.Dec("cc_tax_percentage")
        .Pk({"cc_call_center_sk"})
        .Fk("cc_closed_date_sk", "date_dim", "d_date_sk")
        .Fk("cc_open_date_sk", "date_dim", "d_date_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("catalog_page", "cp", TableClass::kDimension,
                   MaintenanceClass::kNonHistory, SchemaPart::kReporting);
    b.Key("cp_catalog_page_sk")
        .Ch("cp_catalog_page_id", 16)
        .Key("cp_start_date_sk")
        .Key("cp_end_date_sk")
        .Vc("cp_department", 50)
        .Int("cp_catalog_number")
        .Int("cp_catalog_page_number")
        .Vc("cp_description", 100)
        .Vc("cp_type", 100)
        .Pk({"cp_catalog_page_sk"})
        .Fk("cp_start_date_sk", "date_dim", "d_date_sk")
        .Fk("cp_end_date_sk", "date_dim", "d_date_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("web_page", "wp", TableClass::kDimension,
                   MaintenanceClass::kHistory, SchemaPart::kAdHoc);
    b.Key("wp_web_page_sk")
        .Ch("wp_web_page_id", 16)
        .Dt("wp_rec_start_date")
        .Dt("wp_rec_end_date")
        .Key("wp_creation_date_sk")
        .Key("wp_access_date_sk")
        .Ch("wp_autogen_flag", 1)
        .Key("wp_customer_sk")
        .Vc("wp_url", 100)
        .Ch("wp_type", 50)
        .Int("wp_char_count")
        .Int("wp_link_count")
        .Int("wp_image_count")
        .Int("wp_max_ad_count")
        .Pk({"wp_web_page_sk"})
        .Fk("wp_creation_date_sk", "date_dim", "d_date_sk")
        .Fk("wp_access_date_sk", "date_dim", "d_date_sk")
        .Fk("wp_customer_sk", "customer", "c_customer_sk");
    tables->push_back(b.Build());
  }
  {
    TableBuilder b("web_site", "web", TableClass::kDimension,
                   MaintenanceClass::kHistory, SchemaPart::kAdHoc);
    b.Key("web_site_sk")
        .Ch("web_site_id", 16)
        .Dt("web_rec_start_date")
        .Dt("web_rec_end_date")
        .Vc("web_name", 50)
        .Key("web_open_date_sk")
        .Key("web_close_date_sk")
        .Vc("web_class", 50)
        .Vc("web_manager", 40)
        .Int("web_mkt_id")
        .Vc("web_mkt_class", 50)
        .Vc("web_mkt_desc", 100)
        .Vc("web_market_manager", 40)
        .Int("web_company_id")
        .Ch("web_company_name", 50);
    AddAddressBlock(b, "web");
    b.Dec("web_tax_percentage")
        .Pk({"web_site_sk"})
        .Fk("web_open_date_sk", "date_dim", "d_date_sk")
        .Fk("web_close_date_sk", "date_dim", "d_date_sk");
    tables->push_back(b.Build());
  }

  return schema;
}

}  // namespace

const Schema& TpcdsSchema() {
  static const Schema& schema = *new Schema(BuildTpcdsSchema());
  return schema;
}

}  // namespace tpcds
