#ifndef TPCDS_SCHEMA_COLUMN_H_
#define TPCDS_SCHEMA_COLUMN_H_

#include <string>

namespace tpcds {

/// Logical column types of the TPC-DS schema. The engine maps these onto
/// its physical representations (int64, scaled decimal, dictionary string).
enum class ColumnType {
  kIdentifier,  // surrogate key / large integer (int64)
  kInteger,     // 32-bit integer semantics
  kDecimal,     // DECIMAL(p,2): all TPC-DS money columns use scale 2
  kDate,        // calendar date
  kChar,        // fixed-width character
  kVarchar,     // variable-width character
};

/// Returns "identifier", "integer", "decimal", "date", "char", "varchar".
const char* ColumnTypeToString(ColumnType type);

/// Physical encoding of one storage column's payload. Chosen per column by
/// a stats pass (StorageColumn::Encode): the encoded form must round-trip
/// the raw payload arrays byte-exactly, including the normalized 0 / ""
/// payloads of NULL cells, so content hashes and checkpoints are
/// representation-independent.
enum class ColEncoding {
  kPlain = 0,  // raw int64s / string bytes (the load-path representation)
  kDict = 1,   // low-NDV strings: u32 code per row + sorted dictionary
  kRle = 2,    // clustered ints: run values + cumulative run ends
  kFor = 3,    // dense ints (surrogate keys): frame-of-reference bit-packed
};

/// Returns "plain", "dict", "rle", "for".
const char* ColEncodingToString(ColEncoding encoding);

/// Declaration of one schema column.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInteger;
  /// Declared maximum width for kChar/kVarchar; 0 otherwise.
  int length = 0;
  bool nullable = true;

  /// Upper bound on this column's rendered width in a flat file, used for
  /// the declared row-length statistic in Table 1.
  int MaxFlatWidth() const;
};

}  // namespace tpcds

#endif  // TPCDS_SCHEMA_COLUMN_H_
