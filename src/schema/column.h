#ifndef TPCDS_SCHEMA_COLUMN_H_
#define TPCDS_SCHEMA_COLUMN_H_

#include <string>

namespace tpcds {

/// Logical column types of the TPC-DS schema. The engine maps these onto
/// its physical representations (int64, scaled decimal, dictionary string).
enum class ColumnType {
  kIdentifier,  // surrogate key / large integer (int64)
  kInteger,     // 32-bit integer semantics
  kDecimal,     // DECIMAL(p,2): all TPC-DS money columns use scale 2
  kDate,        // calendar date
  kChar,        // fixed-width character
  kVarchar,     // variable-width character
};

/// Returns "identifier", "integer", "decimal", "date", "char", "varchar".
const char* ColumnTypeToString(ColumnType type);

/// Declaration of one schema column.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInteger;
  /// Declared maximum width for kChar/kVarchar; 0 otherwise.
  int length = 0;
  bool nullable = true;

  /// Upper bound on this column's rendered width in a flat file, used for
  /// the declared row-length statistic in Table 1.
  int MaxFlatWidth() const;
};

}  // namespace tpcds

#endif  // TPCDS_SCHEMA_COLUMN_H_
