#ifndef TPCDS_SCHEMA_SCHEMA_H_
#define TPCDS_SCHEMA_SCHEMA_H_

#include <string>
#include <vector>

#include "schema/table.h"
#include "util/status.h"

namespace tpcds {

/// The complete TPC-DS logical schema: the "snowstorm" of multiple
/// snowflake schemas with shared dimensions (paper §2). 24 tables: 7 fact
/// tables (three sales channels × {sales, returns} plus the shared
/// inventory table) and 17 dimensions.
class Schema {
 public:
  Schema() = default;

  const std::vector<TableDef>& tables() const { return tables_; }

  /// Table lookup by name; nullptr when absent.
  const TableDef* FindTable(const std::string& name) const;

  /// Index of the named table in tables(), or -1.
  int TableIndex(const std::string& name) const;

  size_t NumFactTables() const;
  size_t NumDimensionTables() const;

  /// Verifies internal consistency: unique table/column names, primary-key
  /// and foreign-key columns resolve, FK targets reference primary keys of
  /// existing tables, column prefixes match the table abbreviation.
  Status Validate() const;

  /// Mutable access for the schema builder.
  std::vector<TableDef>* mutable_tables() { return &tables_; }

 private:
  std::vector<TableDef> tables_;
};

/// Returns the process-wide TPC-DS schema catalog (built once, immutable).
const Schema& TpcdsSchema();

}  // namespace tpcds

#endif  // TPCDS_SCHEMA_SCHEMA_H_
