#ifndef TPCDS_SCHEMA_TABLE_H_
#define TPCDS_SCHEMA_TABLE_H_

#include <string>
#include <vector>

#include "schema/column.h"

namespace tpcds {

/// Fact tables store transactions and scale linearly with the scale factor;
/// dimension tables supply context and scale sub-linearly (paper §2.1, §3.1).
enum class TableClass { kFact, kDimension };

/// How a table participates in data maintenance (paper §3.3.2, §4.2):
/// static dimensions are loaded once and never updated; non-history-keeping
/// dimensions are updated in place (Fig. 8); history-keeping dimensions get
/// a new revision per update (Fig. 9); fact tables see clustered
/// insert/delete (Fig. 10).
enum class MaintenanceClass { kStatic, kNonHistory, kHistory, kFact };

/// The benchmark splits the schema into an ad-hoc part (store + web
/// channels: no complex auxiliary structures allowed) and a reporting part
/// (catalog channel: auxiliary structures allowed). Shared dimensions are
/// "common" (paper §2.2).
enum class SchemaPart { kAdHoc, kReporting, kCommon };

/// A (possibly composite) foreign-key relationship.
struct ForeignKeyDef {
  std::vector<std::string> columns;
  std::string referenced_table;
  std::vector<std::string> referenced_columns;
};

/// Declaration of one schema table.
struct TableDef {
  std::string name;
  /// Column-name prefix, e.g. "ss" for store_sales.
  std::string abbrev;
  TableClass table_class = TableClass::kDimension;
  MaintenanceClass maintenance = MaintenanceClass::kStatic;
  SchemaPart part = SchemaPart::kCommon;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKeyDef> foreign_keys;

  /// Index of the named column, or -1.
  int ColumnIndex(const std::string& column_name) const;
  bool HasColumn(const std::string& column_name) const {
    return ColumnIndex(column_name) >= 0;
  }

  bool is_fact() const { return table_class == TableClass::kFact; }

  /// Sum of per-column MaxFlatWidth() plus delimiters: the declared
  /// maximum flat-file row length.
  int DeclaredMaxRowBytes() const;
};

}  // namespace tpcds

#endif  // TPCDS_SCHEMA_TABLE_H_
