#ifndef TPCDS_SCHEMA_SCHEMA_STATS_H_
#define TPCDS_SCHEMA_SCHEMA_STATS_H_

#include <string>

#include "schema/schema.h"

namespace tpcds {

/// Aggregate schema statistics — the quantities reported in Table 1 of the
/// paper (number of fact/dimension tables, column-count min/max/avg,
/// foreign-key count, row-length min/max/avg).
struct SchemaStats {
  int num_fact_tables = 0;
  int num_dimension_tables = 0;
  int min_columns = 0;
  int max_columns = 0;
  double avg_columns = 0.0;
  int num_foreign_keys = 0;
  /// Declared flat-file row lengths (schema upper bounds). The paper's
  /// figures are empirical averages from generated data; those are computed
  /// by bench_table1_schema_stats from generator output.
  int min_declared_row_bytes = 0;
  int max_declared_row_bytes = 0;
  double avg_declared_row_bytes = 0.0;
};

/// Computes the Table 1 statistics for a schema.
SchemaStats ComputeSchemaStats(const Schema& schema);

/// Renders an ASCII rendition of the paper's Table 1 from `stats`.
std::string FormatSchemaStats(const SchemaStats& stats);

/// Renders the store-channel snowflake (paper Fig. 1) as text: each fact
/// table with its dimension (and dimension-to-dimension) FK edges.
std::string FormatSnowflake(const Schema& schema,
                            const std::string& fact_table);

}  // namespace tpcds

#endif  // TPCDS_SCHEMA_SCHEMA_STATS_H_
