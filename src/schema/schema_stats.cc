#include "schema/schema_stats.h"

#include <limits>
#include <set>

#include "util/string_util.h"

namespace tpcds {

SchemaStats ComputeSchemaStats(const Schema& schema) {
  SchemaStats stats;
  stats.num_fact_tables = static_cast<int>(schema.NumFactTables());
  stats.num_dimension_tables =
      static_cast<int>(schema.NumDimensionTables());

  stats.min_columns = std::numeric_limits<int>::max();
  stats.min_declared_row_bytes = std::numeric_limits<int>::max();
  int64_t total_columns = 0;
  int64_t total_bytes = 0;
  for (const TableDef& t : schema.tables()) {
    int cols = static_cast<int>(t.columns.size());
    total_columns += cols;
    stats.min_columns = std::min(stats.min_columns, cols);
    stats.max_columns = std::max(stats.max_columns, cols);
    stats.num_foreign_keys += static_cast<int>(t.foreign_keys.size());
    int bytes = t.DeclaredMaxRowBytes();
    total_bytes += bytes;
    stats.min_declared_row_bytes = std::min(stats.min_declared_row_bytes,
                                            bytes);
    stats.max_declared_row_bytes = std::max(stats.max_declared_row_bytes,
                                            bytes);
  }
  size_t n = schema.tables().size();
  if (n > 0) {
    stats.avg_columns = static_cast<double>(total_columns) / n;
    stats.avg_declared_row_bytes = static_cast<double>(total_bytes) / n;
  }
  return stats;
}

std::string FormatSchemaStats(const SchemaStats& stats) {
  std::string out;
  out += StringPrintf("Number of fact tables          %3d\n",
                      stats.num_fact_tables);
  out += StringPrintf("Number of dimension tables     %3d\n",
                      stats.num_dimension_tables);
  out += StringPrintf("Number of columns        min   %3d\n",
                      stats.min_columns);
  out += StringPrintf("                         max   %3d\n",
                      stats.max_columns);
  out += StringPrintf("                         avg   %5.1f\n",
                      stats.avg_columns);
  out += StringPrintf("Number of foreign keys         %3d\n",
                      stats.num_foreign_keys);
  return out;
}

std::string FormatSnowflake(const Schema& schema,
                            const std::string& fact_table) {
  const TableDef* fact = schema.FindTable(fact_table);
  if (fact == nullptr) return "unknown table: " + fact_table;

  std::string out = fact->name + " (fact)\n";
  std::set<std::string> first_level;
  for (const ForeignKeyDef& fk : fact->foreign_keys) {
    if (fk.referenced_table == fact->name) continue;
    out += "  -> " + fk.referenced_table;
    const TableDef* dim = schema.FindTable(fk.referenced_table);
    if (dim != nullptr && dim->is_fact()) out += " (fact-to-fact)";
    out += "  [" + Join(fk.columns, ",") + "]\n";
    if (dim != nullptr && !dim->is_fact()) {
      first_level.insert(dim->name);
    }
  }
  // Second snowflake layer: dimension-to-dimension edges.
  for (const std::string& name : first_level) {
    const TableDef* dim = schema.FindTable(name);
    for (const ForeignKeyDef& fk : dim->foreign_keys) {
      out += "       " + dim->name + " -> " + fk.referenced_table + "  [" +
             Join(fk.columns, ",") + "]\n";
    }
  }
  return out;
}

}  // namespace tpcds
