// Templates 56..75: the web channel (ad-hoc part of the schema).

#include "templates/templates.h"

namespace tpcds {
namespace internal_templates {
namespace {

QueryTemplate T(int id, QueryClass cls, QueryFlavor flavor, int family,
                const char* text) {
  QueryTemplate t;
  t.id = id;
  t.name = "q" + std::string(id < 10 ? "0" : "") + std::to_string(id);
  t.query_class = cls;
  t.flavor = flavor;
  t.olap_family = family;
  t.text = text;
  return t;
}

}  // namespace

void AppendWebTemplates(std::vector<QueryTemplate>* out) {
  // q56: web revenue and profit per site for one year.
  out->push_back(T(56, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT web.web_name,
       SUM(ws_ext_sales_price) AS revenue,
       SUM(ws_net_profit) AS profit
FROM web_sales, web_site web, date_dim d
WHERE ws_web_site_sk = web.web_site_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY web.web_name
ORDER BY profit DESC
)"));

  // q57: page-type conversion: which page types sell.
  out->push_back(T(57, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT wp.wp_type,
       COUNT(*) AS line_items,
       SUM(ws_ext_sales_price) AS revenue,
       AVG(ws_quantity) AS avg_units
FROM web_sales, web_page wp, date_dim d
WHERE ws_web_page_sk = wp.wp_web_page_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY wp.wp_type
ORDER BY revenue DESC
)"));

  // q58: night-shift e-commerce: orders placed outside store hours.
  out->push_back(T(58, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT t.t_sub_shift, d.d_moy,
       COUNT(*) AS line_items,
       SUM(ws_net_paid) AS paid
FROM web_sales, time_dim t, date_dim d
WHERE ws_sold_time_sk = t.t_time_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND t.t_sub_shift IN ('night', 'evening')
GROUP BY t.t_sub_shift, d.d_moy
ORDER BY d.d_moy, t.t_sub_shift
)"));

  // q59: web buyers far from home: billing state vs site placement.
  out->push_back(T(59, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define STATES = list(states, 5);
SELECT ca.ca_state,
       COUNT(DISTINCT ws_bill_customer_sk) AS customers,
       SUM(ws_ext_sales_price) AS revenue
FROM web_sales, customer_address ca, date_dim d
WHERE ws_bill_addr_sk = ca.ca_address_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ca.ca_state IN ([STATES])
GROUP BY ca.ca_state
ORDER BY revenue DESC
)"));

  // q60: web returns: value lost per reason in the holiday zone.
  out->push_back(T(60, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT r.r_reason_desc,
       SUM(wr_return_amt) AS value_back,
       SUM(wr_net_loss) AS net_loss
FROM web_returns, reason r, date_dim d
WHERE wr_reason_sk = r.r_reason_sk
  AND wr_returned_date_sk = d.d_date_sk
  AND d.d_year = [YEAR] AND d.d_moy BETWEEN 11 AND 12
GROUP BY r.r_reason_desc
ORDER BY net_loss DESC
LIMIT 50
)"));

  // q61: ship-mode mix for web orders above a value threshold.
  out->push_back(T(61, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define FLOOR = random(500, 1500, uniform);
SELECT sm.sm_type,
       COUNT(*) AS orders,
       AVG(ws_ext_ship_cost) AS avg_ship_cost
FROM web_sales, ship_mode sm, date_dim d
WHERE ws_ship_mode_sk = sm.sm_ship_mode_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ws_ext_sales_price > [FLOOR]
GROUP BY sm.sm_type
ORDER BY orders DESC
)"));

  // q62: web item revenue share within class (reporting twin of q20,
  // phrased over the ad-hoc part).
  out->push_back(T(62, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define CATS = list(categories, 3);
define SDATE = date(30, 3);
SELECT i_item_desc, i_category, i_class, i_current_price,
       SUM(ws_ext_sales_price) AS itemrevenue,
       SUM(ws_ext_sales_price)*100/SUM(SUM(ws_ext_sales_price)) OVER
           (PARTITION BY i_class) AS revenueratio
FROM web_sales, item, date_dim
WHERE ws_item_sk = i_item_sk
  AND i_category IN ([CATS])
  AND ws_sold_date_sk = d_date_sk
  AND d_date BETWEEN CAST('[SDATE]' AS DATE)
                 AND (CAST('[SDATE]' AS DATE) + 30)
GROUP BY i_item_id, i_item_desc, i_category, i_class, i_current_price
ORDER BY i_category, i_class, i_item_id, i_item_desc, revenueratio
)"));

  // q63: gift shipping on the web: bill/ship demographic mismatch.
  out->push_back(T(63, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT d.d_moy, COUNT(*) AS gift_lines,
       SUM(ws_ext_ship_cost) AS gift_ship_cost
FROM web_sales, date_dim d
WHERE ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ws_bill_customer_sk <> ws_ship_customer_sk
GROUP BY d.d_moy
ORDER BY d.d_moy
)"));

  // q64: top web customers by profit with dense rank.
  out->push_back(T(64, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT ranked.c_customer_id, ranked.profit, ranked.profit_rank
FROM (SELECT c.c_customer_id AS c_customer_id,
             SUM(ws_net_profit) AS profit,
             DENSE_RANK() OVER (ORDER BY SUM(ws_net_profit) DESC)
                 AS profit_rank
      FROM web_sales, customer c, date_dim d
      WHERE ws_bill_customer_sk = c.c_customer_sk
        AND ws_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR]
      GROUP BY c.c_customer_id) ranked
WHERE ranked.profit_rank <= 100
ORDER BY ranked.profit_rank, ranked.c_customer_id
)"));

  // q65: web vs returns timing: how fast do web purchases come back.
  out->push_back(T(65, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT CASE WHEN lag.days_out <= 30 THEN '0-30'
            WHEN lag.days_out <= 60 THEN '31-60'
            ELSE '61+' END AS return_window,
       COUNT(*) AS returns_cnt,
       SUM(lag.amount) AS value_back
FROM (SELECT wr_returned_date_sk - ws_sold_date_sk AS days_out,
             wr_return_amt AS amount
      FROM web_sales, web_returns, date_dim d
      WHERE ws_item_sk = wr_item_sk
        AND ws_order_number = wr_order_number
        AND ws_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR]) lag
GROUP BY CASE WHEN lag.days_out <= 30 THEN '0-30'
              WHEN lag.days_out <= 60 THEN '31-60'
              ELSE '61+' END
ORDER BY return_window
)"));

  // q66: autogenerated pages: do personalised pages sell more?
  out->push_back(T(66, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT wp.wp_autogen_flag,
       COUNT(*) AS line_items,
       AVG(ws_ext_sales_price) AS avg_line_value
FROM web_sales, web_page wp, date_dim d
WHERE ws_web_page_sk = wp.wp_web_page_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY wp.wp_autogen_flag
ORDER BY wp.wp_autogen_flag
)"));

  // q67..q68: iterative OLAP on the web channel: year -> month drill.
  out->push_back(T(67, QueryClass::kAdHoc, QueryFlavor::kIterativeOlap, 3,
                   R"(
SELECT d.d_year, SUM(ws_ext_sales_price) AS revenue
FROM web_sales, date_dim d
WHERE ws_sold_date_sk = d.d_date_sk
GROUP BY d.d_year
ORDER BY d.d_year
)"));
  out->push_back(T(68, QueryClass::kAdHoc, QueryFlavor::kIterativeOlap, 3,
                   R"(
define YEAR = random(1998, 2002, uniform);
SELECT d.d_moy, SUM(ws_ext_sales_price) AS revenue,
       SUM(ws_ext_sales_price) * 100 /
           SUM(SUM(ws_ext_sales_price)) OVER (PARTITION BY d.d_year)
           AS month_share
FROM web_sales, date_dim d
WHERE ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY d.d_year, d.d_moy
ORDER BY d.d_moy
)"));

  // q69: heavy web items: quantity outliers per warehouse.
  out->push_back(T(69, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define QTY = random(80, 100, uniform);
SELECT w.w_warehouse_name, i.i_item_id,
       SUM(ws_quantity) AS units
FROM web_sales, warehouse w, item i, date_dim d
WHERE ws_warehouse_sk = w.w_warehouse_sk
  AND ws_item_sk = i.i_item_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ws_quantity >= [QTY]
GROUP BY w.w_warehouse_name, i.i_item_id
ORDER BY units DESC, i.i_item_id
LIMIT 100
)"));

  // q70: returning customers differ from buyers (web returns).
  out->push_back(T(70, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT CASE WHEN wr_refunded_customer_sk = wr_returning_customer_sk
            THEN 'same person' ELSE 'different person' END AS who_returned,
       COUNT(*) AS returns_cnt,
       SUM(wr_return_amt) AS value_back
FROM web_returns, date_dim d
WHERE wr_returned_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY CASE WHEN wr_refunded_customer_sk = wr_returning_customer_sk
              THEN 'same person' ELSE 'different person' END
ORDER BY who_returned
)"));

  // q71: birthday-month shoppers on the web.
  out->push_back(T(71, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT d.d_moy, COUNT(*) AS birthday_lines,
       SUM(ws_ext_sales_price) AS revenue
FROM web_sales, customer c, date_dim d
WHERE ws_bill_customer_sk = c.c_customer_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND c.c_birth_month = d.d_moy
GROUP BY d.d_moy
ORDER BY d.d_moy
)"));

  // q72: long-tail items: sold on the web but never above list discount.
  out->push_back(T(72, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define COLOR1 = dist(colors);
define COLOR2 = dist(colors);
SELECT i.i_item_id, i.i_color,
       SUM(ws_quantity) AS units,
       SUM(ws_ext_discount_amt) AS discount_given
FROM web_sales, item i, date_dim d
WHERE ws_item_sk = i.i_item_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND i.i_color IN ('[COLOR1]', '[COLOR2]')
GROUP BY i.i_item_id, i.i_color
ORDER BY units DESC, i.i_item_id
LIMIT 100
)"));

  // q73: web order size distribution (derived + bucket group).
  out->push_back(T(73, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT orders.lines_per_order, COUNT(*) AS orders_cnt
FROM (SELECT ws_order_number, COUNT(*) AS lines_per_order
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      GROUP BY ws_order_number) orders
GROUP BY orders.lines_per_order
ORDER BY orders.lines_per_order
)"));

  // q74: education profile of web spenders (snowflake through customer).
  out->push_back(T(74, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define GENDER = dist(genders);
SELECT cd.cd_education_status,
       COUNT(DISTINCT c.c_customer_sk) AS customers,
       SUM(ws_net_paid) AS paid
FROM web_sales, customer c, customer_demographics cd, date_dim d
WHERE ws_bill_customer_sk = c.c_customer_sk
  AND c.c_current_cdemo_sk = cd.cd_demo_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND cd.cd_gender = '[GENDER]'
GROUP BY cd.cd_education_status
ORDER BY paid DESC
)"));

  // q75: data-mining extraction: web session-style feature dump.
  out->push_back(T(75, QueryClass::kAdHoc, QueryFlavor::kDataMining, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT ws_bill_customer_sk AS customer_sk,
       COUNT(DISTINCT ws_order_number) AS orders,
       COUNT(*) AS line_items,
       SUM(ws_quantity) AS units,
       SUM(ws_ext_sales_price) AS revenue,
       SUM(ws_ext_ship_cost) AS ship_cost,
       MIN(ws_sold_date_sk) AS first_day,
       MAX(ws_sold_date_sk) AS last_day
FROM web_sales, date_dim d
WHERE ws_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY ws_bill_customer_sk
ORDER BY revenue DESC
LIMIT 5000
)"));
}

}  // namespace internal_templates
}  // namespace tpcds
