// Templates 76..99: cross-channel queries. Queries that touch both the
// ad-hoc part (store/web) and the reporting part (catalog/inventory) are
// *hybrid* (paper §4.1); pure store+web combinations stay ad-hoc.

#include "templates/templates.h"

namespace tpcds {
namespace internal_templates {
namespace {

QueryTemplate T(int id, QueryClass cls, QueryFlavor flavor, int family,
                const char* text) {
  QueryTemplate t;
  t.id = id;
  t.name = "q" + std::string(id < 10 ? "0" : "") + std::to_string(id);
  t.query_class = cls;
  t.flavor = flavor;
  t.olap_family = family;
  t.text = text;
  return t;
}

}  // namespace

void AppendCrossChannelTemplates(std::vector<QueryTemplate>* out) {
  // q76: total company revenue by channel (three-way UNION ALL rollup).
  out->push_back(T(76, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT channel, SUM(revenue) AS revenue, SUM(cnt) AS line_items
FROM (SELECT 'store' AS channel, ss_ext_sales_price AS revenue, 1 AS cnt
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, cs_ext_sales_price AS revenue, 1 AS cnt
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, ws_ext_sales_price AS revenue, 1 AS cnt
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]) all_sales
GROUP BY channel
ORDER BY revenue DESC
)"));

  // q77: items selling in store but not in catalog (anti-join shape).
  out->push_back(T(77, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define CAT = dist(categories);
SELECT i.i_item_id, SUM(ss_quantity) AS store_units
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND i.i_category = '[CAT]'
  AND ss_item_sk NOT IN (SELECT cs_item_sk FROM catalog_sales, date_dim
                         WHERE cs_sold_date_sk = d_date_sk
                           AND d_year = [YEAR])
GROUP BY i.i_item_id
ORDER BY store_units DESC, i.i_item_id
LIMIT 100
)"));

  // q78: store vs web price realisation for the same items.
  out->push_back(T(78, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT s.item_sk, s.store_avg, w.web_avg,
       w.web_avg - s.store_avg AS web_premium
FROM (SELECT ss_item_sk AS item_sk, AVG(ss_sales_price) AS store_avg
      FROM store_sales, date_dim
      WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR]
      GROUP BY ss_item_sk) s,
     (SELECT ws_item_sk AS item_sk, AVG(ws_sales_price) AS web_avg
      FROM web_sales, date_dim
      WHERE ws_sold_date_sk = d_date_sk AND d_year = [YEAR]
      GROUP BY ws_item_sk) w
WHERE s.item_sk = w.item_sk
ORDER BY web_premium DESC, s.item_sk
LIMIT 100
)"));

  // q79: customers who shop all three channels in one year.
  out->push_back(T(79, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT c.c_customer_id, c.c_last_name,
       SUM(ss_net_paid) AS store_paid
FROM store_sales, customer c, date_dim d
WHERE ss_customer_sk = c.c_customer_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ss_customer_sk IN (SELECT ws_bill_customer_sk
                         FROM web_sales, date_dim
                         WHERE ws_sold_date_sk = d_date_sk
                           AND d_year = [YEAR])
  AND ss_customer_sk IN (SELECT cs_bill_customer_sk
                         FROM catalog_sales, date_dim
                         WHERE cs_sold_date_sk = d_date_sk
                           AND d_year = [YEAR])
GROUP BY c.c_customer_id, c.c_last_name
ORDER BY store_paid DESC, c.c_customer_id
LIMIT 100
)"));

  // q80: channel return rates side by side.
  out->push_back(T(80, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT channel, SUM(sold) AS sold_value, SUM(returned) AS returned_value,
       SUM(returned) * 100 / SUM(sold) AS return_pct
FROM (SELECT 'store' AS channel, ss_ext_sales_price AS sold, 0 AS returned
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'store' AS channel, 0 AS sold, sr_return_amt AS returned
      FROM store_returns, date_dim d
      WHERE sr_returned_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, cs_ext_sales_price AS sold, 0 AS returned
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, 0 AS sold, cr_return_amount AS returned
      FROM catalog_returns, date_dim d
      WHERE cr_returned_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, ws_ext_sales_price AS sold, 0 AS returned
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, 0 AS sold, wr_return_amt AS returned
      FROM web_returns, date_dim d
      WHERE wr_returned_date_sk = d.d_date_sk AND d.d_year = [YEAR]) x
GROUP BY channel
HAVING SUM(sold) > 0
ORDER BY return_pct DESC
)"));

  // q81: category mix per channel (shared item dimension).
  out->push_back(T(81, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define CAT = dist(categories);
SELECT x.channel, SUM(x.rev) AS revenue
FROM (SELECT 'store' AS channel, ss_ext_sales_price AS rev, ss_item_sk
             AS item_sk
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, cs_ext_sales_price AS rev, cs_item_sk
             AS item_sk
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, ws_ext_sales_price AS rev, ws_item_sk
             AS item_sk
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]) x, item i
WHERE x.item_sk = i.i_item_sk
  AND i.i_category = '[CAT]'
GROUP BY x.channel
ORDER BY revenue DESC
)"));

  // q82: store shoppers who also browse the web (demographic contrast).
  out->push_back(T(82, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT cd.cd_gender, cd.cd_marital_status,
       COUNT(DISTINCT ss_customer_sk) AS dual_channel_customers
FROM store_sales, customer c, customer_demographics cd, date_dim d
WHERE ss_customer_sk = c.c_customer_sk
  AND c.c_current_cdemo_sk = cd.cd_demo_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ss_customer_sk IN (SELECT ws_bill_customer_sk
                         FROM web_sales, date_dim
                         WHERE ws_sold_date_sk = d_date_sk
                           AND d_year = [YEAR])
GROUP BY cd.cd_gender, cd.cd_marital_status
ORDER BY dual_channel_customers DESC
)"));

  // q83: same item returned across all three channels in one period.
  out->push_back(T(83, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
WITH sr AS (SELECT sr_item_sk AS item_sk, SUM(sr_return_quantity) AS qty
            FROM store_returns, date_dim
            WHERE sr_returned_date_sk = d_date_sk AND d_year = [YEAR]
            GROUP BY sr_item_sk),
     crr AS (SELECT cr_item_sk AS item_sk, SUM(cr_return_quantity) AS qty
             FROM catalog_returns, date_dim
             WHERE cr_returned_date_sk = d_date_sk AND d_year = [YEAR]
             GROUP BY cr_item_sk),
     wrr AS (SELECT wr_item_sk AS item_sk, SUM(wr_return_quantity) AS qty
             FROM web_returns, date_dim
             WHERE wr_returned_date_sk = d_date_sk AND d_year = [YEAR]
             GROUP BY wr_item_sk)
SELECT sr.item_sk, sr.qty AS store_qty, crr.qty AS catalog_qty,
       wrr.qty AS web_qty
FROM sr, crr, wrr
WHERE sr.item_sk = crr.item_sk AND sr.item_sk = wrr.item_sk
ORDER BY store_qty DESC, sr.item_sk
LIMIT 100
)"));

  // q84: holiday-zone lift per channel (comparability zones in action).
  out->push_back(T(84, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT x.channel,
       SUM(CASE WHEN x.moy BETWEEN 11 AND 12 THEN x.rev ELSE 0 END)
           AS holiday_rev,
       SUM(CASE WHEN x.moy BETWEEN 1 AND 7 THEN x.rev ELSE 0 END)
           AS offseason_rev
FROM (SELECT 'store' AS channel, d.d_moy AS moy,
             ss_ext_sales_price AS rev
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, d.d_moy AS moy,
             cs_ext_sales_price AS rev
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, d.d_moy AS moy, ws_ext_sales_price AS rev
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]) x
GROUP BY x.channel
ORDER BY x.channel
)"));

  // q85: store sales of items that are low on inventory (hybrid fact
  // pair: store_sales + inventory).
  out->push_back(T(85, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
define MOY = random(1, 7, uniform);
define LOW = random(50, 200, uniform);
SELECT i.i_item_id, SUM(ss_quantity) AS store_demand
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR] AND d.d_moy = [MOY]
  AND ss_item_sk IN (SELECT inv_item_sk
                     FROM inventory, date_dim
                     WHERE inv_date_sk = d_date_sk
                       AND d_year = [YEAR] AND d_moy = [MOY]
                       AND inv_quantity_on_hand < [LOW])
GROUP BY i.i_item_id
ORDER BY store_demand DESC, i.i_item_id
LIMIT 100
)"));

  // q86: year-over-year growth per channel (derived tables).
  out->push_back(T(86, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1999, 2002, uniform);
SELECT cur.channel, cur.revenue AS this_year, prior.revenue AS last_year,
       (cur.revenue - prior.revenue) * 100 / prior.revenue AS growth_pct
FROM (SELECT 'store' AS channel, SUM(ss_ext_sales_price) AS revenue
      FROM store_sales, date_dim
      WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, SUM(ws_ext_sales_price) AS revenue
      FROM web_sales, date_dim
      WHERE ws_sold_date_sk = d_date_sk AND d_year = [YEAR]) cur,
     (SELECT 'store' AS channel, SUM(ss_ext_sales_price) AS revenue
      FROM store_sales, date_dim
      WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR] - 1
      UNION ALL
      SELECT 'web' AS channel, SUM(ws_ext_sales_price) AS revenue
      FROM web_sales, date_dim
      WHERE ws_sold_date_sk = d_date_sk AND d_year = [YEAR] - 1) prior
WHERE cur.channel = prior.channel
ORDER BY growth_pct DESC
)"));

  // q87: brand rank shift between store and catalog.
  out->push_back(T(87, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define CAT = dist(categories);
SELECT s.brand, s.brand_rank AS store_rank, c.brand_rank AS catalog_rank
FROM (SELECT i.i_brand AS brand,
             RANK() OVER (ORDER BY SUM(ss_ext_sales_price) DESC)
                 AS brand_rank
      FROM store_sales, item i, date_dim d
      WHERE ss_item_sk = i.i_item_sk AND ss_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND i.i_category = '[CAT]'
      GROUP BY i.i_brand) s,
     (SELECT i.i_brand AS brand,
             RANK() OVER (ORDER BY SUM(cs_ext_sales_price) DESC)
                 AS brand_rank
      FROM catalog_sales, item i, date_dim d
      WHERE cs_item_sk = i.i_item_sk AND cs_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND i.i_category = '[CAT]'
      GROUP BY i.i_brand) c
WHERE s.brand = c.brand
ORDER BY s.brand_rank
LIMIT 100
)"));

  // q88: store purchases returned through the web-like remote path:
  // customers returning by mail (catalog returns) what stores sold.
  out->push_back(T(88, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT i.i_category,
       SUM(cr_return_amount) AS remote_returns,
       SUM(sr_return_amt) AS store_returns
FROM item i, catalog_returns, store_returns, date_dim d
WHERE cr_item_sk = i.i_item_sk
  AND sr_item_sk = i.i_item_sk
  AND cr_returned_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY i.i_category
ORDER BY remote_returns DESC
LIMIT 50
)"));

  // q89: monthly revenue rank of categories within each channel.
  out->push_back(T(89, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define MOY = random(8, 10, uniform);
SELECT x.channel, i.i_category, SUM(x.rev) AS revenue,
       RANK() OVER (PARTITION BY x.channel
                    ORDER BY SUM(x.rev) DESC) AS cat_rank
FROM (SELECT 'store' AS channel, ss_item_sk AS item_sk,
             ss_ext_sales_price AS rev
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND d.d_moy = [MOY]
      UNION ALL
      SELECT 'web' AS channel, ws_item_sk AS item_sk,
             ws_ext_sales_price AS rev
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND d.d_moy = [MOY]) x, item i
WHERE x.item_sk = i.i_item_sk
GROUP BY x.channel, i.i_category
ORDER BY x.channel, cat_rank
)"));

  // q90: morning vs evening web-to-store ratio.
  out->push_back(T(90, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT am.cnt AS am_web_lines, pm.cnt AS pm_web_lines,
       am.cnt * 1.0 / pm.cnt AS am_pm_ratio
FROM (SELECT COUNT(*) AS cnt
      FROM web_sales, time_dim t, date_dim d
      WHERE ws_sold_time_sk = t.t_time_sk
        AND ws_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND t.t_hour BETWEEN 7 AND 11) am,
     (SELECT COUNT(*) AS cnt
      FROM web_sales, time_dim t, date_dim d
      WHERE ws_sold_time_sk = t.t_time_sk
        AND ws_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND t.t_hour BETWEEN 19 AND 23) pm
WHERE pm.cnt > 0
)"));

  // q91: call centers losing the most to returns of web-sold items.
  out->push_back(T(91, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT cc.cc_name,
       SUM(cr_net_loss) AS loss
FROM catalog_returns, call_center cc, date_dim d
WHERE cr_call_center_sk = cc.cc_call_center_sk
  AND cr_returned_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND cr_item_sk IN (SELECT ws_item_sk FROM web_sales, date_dim
                     WHERE ws_sold_date_sk = d_date_sk
                       AND d_year = [YEAR])
GROUP BY cc.cc_name
ORDER BY loss DESC
)"));

  // q92: manufacturer footprint across channels (aggregate exchange:
  // the [AGG] substitution swaps the aggregate function, paper §4.1).
  out->push_back(T(92, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define AGG = choice(SUM|MIN|MAX);
SELECT i.i_manufact_id,
       [AGG](s.metric) AS store_metric,
       [AGG](c.metric) AS catalog_metric
FROM (SELECT ss_item_sk AS item_sk, SUM(ss_ext_sales_price) AS metric
      FROM store_sales, date_dim
      WHERE ss_sold_date_sk = d_date_sk AND d_year = [YEAR]
      GROUP BY ss_item_sk) s,
     (SELECT cs_item_sk AS item_sk, SUM(cs_ext_sales_price) AS metric
      FROM catalog_sales, date_dim
      WHERE cs_sold_date_sk = d_date_sk AND d_year = [YEAR]
      GROUP BY cs_item_sk) c,
     item i
WHERE s.item_sk = c.item_sk
  AND s.item_sk = i.i_item_sk
  AND i.i_manufact_id BETWEEN 1 AND 100
GROUP BY i.i_manufact_id
ORDER BY store_metric DESC, i.i_manufact_id
LIMIT 100
)"));

  // q93: customers whose first purchase was on the web.
  out->push_back(T(93, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT d2.d_year AS first_sales_year, COUNT(*) AS web_lines
FROM web_sales, customer c, date_dim d, date_dim d2
WHERE ws_bill_customer_sk = c.c_customer_sk
  AND ws_sold_date_sk = d.d_date_sk
  AND c.c_first_sales_date_sk = d2.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY d2.d_year
ORDER BY d2.d_year
)"));

  // q94: average ticket by channel and quarter (wide union group).
  out->push_back(T(94, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT x.channel, x.qoy, AVG(x.paid) AS avg_line_paid
FROM (SELECT 'store' AS channel, d.d_qoy AS qoy, ss_net_paid AS paid
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, d.d_qoy AS qoy, cs_net_paid AS paid
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, d.d_qoy AS qoy, ws_net_paid AS paid
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]) x
GROUP BY x.channel, x.qoy
ORDER BY x.channel, x.qoy
)"));

  // q95..q96: iterative OLAP family: company rollup then channel drill.
  out->push_back(T(95, QueryClass::kHybrid, QueryFlavor::kIterativeOlap, 4,
                   R"(
SELECT d.d_year, SUM(ss_ext_sales_price) AS store_rev
FROM store_sales, date_dim d
WHERE ss_sold_date_sk = d.d_date_sk
GROUP BY d.d_year
ORDER BY d.d_year
)"));
  out->push_back(T(96, QueryClass::kHybrid, QueryFlavor::kIterativeOlap, 4,
                   R"(
define YEAR = random(1998, 2002, uniform);
SELECT x.channel, x.moy, SUM(x.rev) AS revenue
FROM (SELECT 'store' AS channel, d.d_moy AS moy, ss_ext_sales_price AS rev
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, d.d_moy AS moy, cs_ext_sales_price AS rev
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]) x
GROUP BY x.channel, x.moy
ORDER BY x.channel, x.moy
)"));

  // q97: baskets containing both a target category and any other item.
  out->push_back(T(97, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define CAT = dist(categories);
SELECT other.i_category AS bought_with, COUNT(*) AS together_lines
FROM (SELECT ss_ticket_number AS ticket, ss_item_sk AS item_sk
      FROM store_sales, item, date_dim
      WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
        AND i_category = '[CAT]'
        AND d_year = [YEAR] AND d_moy = 12) target_line,
     store_sales other_line, item other
WHERE target_line.ticket = other_line.ss_ticket_number
  AND other_line.ss_item_sk = other.i_item_sk
  AND other.i_category <> '[CAT]'
GROUP BY other.i_category
ORDER BY together_lines DESC
)"));

  // q98: data-mining extraction: full channel x demographic cube feed.
  out->push_back(T(98, QueryClass::kHybrid, QueryFlavor::kDataMining, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT x.channel, cd.cd_gender, cd.cd_marital_status,
       cd.cd_education_status,
       COUNT(*) AS line_items, SUM(x.rev) AS revenue
FROM (SELECT 'store' AS channel, ss_cdemo_sk AS cdemo_sk,
             ss_ext_sales_price AS rev
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, cs_bill_cdemo_sk AS cdemo_sk,
             cs_ext_sales_price AS rev
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, ws_bill_cdemo_sk AS cdemo_sk,
             ws_ext_sales_price AS rev
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]) x,
     customer_demographics cd
WHERE x.cdemo_sk = cd.cd_demo_sk
GROUP BY x.channel, cd.cd_gender, cd.cd_marital_status,
         cd.cd_education_status
ORDER BY x.channel, revenue DESC
LIMIT 5000
)"));

  // q99: the kitchen sink: channel totals with per-channel rank, share
  // windows and a HAVING floor — the closing stress query.
  out->push_back(T(99, QueryClass::kHybrid, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define FLOOR = random(100, 1000, uniform);
SELECT x.channel, i.i_category,
       SUM(x.rev) AS revenue,
       SUM(x.rev) * 100 / SUM(SUM(x.rev)) OVER (PARTITION BY x.channel)
           AS channel_share,
       RANK() OVER (PARTITION BY x.channel ORDER BY SUM(x.rev) DESC)
           AS cat_rank
FROM (SELECT 'store' AS channel, ss_item_sk AS item_sk,
             ss_ext_sales_price AS rev
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'catalog' AS channel, cs_item_sk AS item_sk,
             cs_ext_sales_price AS rev
      FROM catalog_sales, date_dim d
      WHERE cs_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      UNION ALL
      SELECT 'web' AS channel, ws_item_sk AS item_sk,
             ws_ext_sales_price AS rev
      FROM web_sales, date_dim d
      WHERE ws_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]) x, item i
WHERE x.item_sk = i.i_item_sk
GROUP BY x.channel, i.i_category
HAVING SUM(x.rev) > [FLOOR]
ORDER BY x.channel, cat_rank
)"));
}

}  // namespace internal_templates
}  // namespace tpcds
