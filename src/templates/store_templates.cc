// Templates 1..30: the store channel (ad-hoc part of the schema).

#include "templates/templates.h"

namespace tpcds {
namespace internal_templates {
namespace {

QueryTemplate T(int id, QueryClass cls, QueryFlavor flavor, int family,
                const char* text) {
  QueryTemplate t;
  t.id = id;
  t.name = "q" + std::string(id < 10 ? "0" : "") + std::to_string(id);
  t.query_class = cls;
  t.flavor = flavor;
  t.olap_family = family;
  t.text = text;
  return t;
}

}  // namespace

void AppendStoreTemplates(std::vector<QueryTemplate>* out) {
  // q01: store revenue and profit per store for one year.
  out->push_back(T(1, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT s.s_store_name, s.s_state,
       SUM(ss_ext_sales_price) AS revenue,
       SUM(ss_net_profit) AS profit
FROM store_sales, date_dim d, store s
WHERE ss_sold_date_sk = d.d_date_sk
  AND ss_store_sk = s.s_store_sk
  AND d.d_year = [YEAR]
GROUP BY s.s_store_name, s.s_state
ORDER BY profit DESC, s.s_store_name
LIMIT 100
)"));

  // q02: return rates by store: fact-to-fact join of sales and returns.
  out->push_back(T(2, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
SELECT s.s_store_name,
       COUNT(*) AS returned_items,
       SUM(sr_return_amt) AS returned_value,
       AVG(sr_return_quantity) AS avg_units_back
FROM store_sales, store_returns, store s, date_dim d
WHERE ss_item_sk = sr_item_sk
  AND ss_ticket_number = sr_ticket_number
  AND ss_store_sk = s.s_store_sk
  AND sr_returned_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY s.s_store_name
ORDER BY returned_value DESC
LIMIT 100
)"));

  // q03: brand revenue in a holiday month for one manufacturer band.
  out->push_back(T(3, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define MANU = random(1, 900, uniform);
SELECT d.d_year, i.i_brand_id AS brand_id, i.i_brand AS brand,
       SUM(ss_ext_sales_price) AS sum_agg
FROM date_dim d, store_sales, item i
WHERE d.d_date_sk = ss_sold_date_sk
  AND ss_item_sk = i.i_item_sk
  AND i.i_manufact_id BETWEEN [MANU] AND [MANU] + 100
  AND d.d_moy = 12
  AND d.d_year = [YEAR]
GROUP BY d.d_year, i.i_brand, i.i_brand_id
ORDER BY d.d_year, sum_agg DESC, brand_id
LIMIT 100
)"));

  // q04: who spends: customer demographics of high-value store tickets.
  out->push_back(T(4, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define EDU = dist(education);
SELECT cd.cd_gender, cd.cd_marital_status, cd.cd_education_status,
       COUNT(*) AS cnt, SUM(ss_net_paid) AS spend
FROM store_sales, customer_demographics cd, date_dim d
WHERE ss_cdemo_sk = cd.cd_demo_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND cd.cd_education_status = '[EDU]'
GROUP BY cd.cd_gender, cd.cd_marital_status, cd.cd_education_status
HAVING SUM(ss_net_paid) > 0
ORDER BY spend DESC
LIMIT 100
)"));

  // q05: quantity statistics by income band of the buying household.
  out->push_back(T(5, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define MOY = random(1, 7, uniform);
define YEAR = random(1998, 2002, uniform);
SELECT ib.ib_lower_bound, ib.ib_upper_bound,
       AVG(ss_quantity) AS avg_qty,
       COUNT(*) AS baskets
FROM store_sales, household_demographics hd, income_band ib, date_dim d
WHERE ss_hdemo_sk = hd.hd_demo_sk
  AND hd.hd_income_band_sk = ib.ib_income_band_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR] AND d.d_moy = [MOY]
GROUP BY ib.ib_lower_bound, ib.ib_upper_bound
ORDER BY ib.ib_lower_bound
)"));

  // q06: items priced above the category average (scalar subquery).
  out->push_back(T(6, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define CAT = dist(categories);
define YEAR = random(1998, 2002, uniform);
SELECT i.i_item_id, i.i_item_desc, i.i_current_price,
       SUM(ss_quantity) AS units
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND i.i_category = '[CAT]'
  AND i.i_current_price > (SELECT AVG(i_current_price) FROM item
                           WHERE i_category = '[CAT]')
GROUP BY i.i_item_id, i.i_item_desc, i.i_current_price
ORDER BY units DESC, i.i_item_id
LIMIT 100
)"));

  // q07: customer addresses driving holiday-season revenue by county.
  out->push_back(T(7, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define MOY = random(11, 12, uniform);
SELECT ca.ca_county, ca.ca_state,
       SUM(ss_ext_sales_price) AS revenue
FROM store_sales, customer_address ca, date_dim d
WHERE ss_addr_sk = ca.ca_address_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR] AND d.d_moy = [MOY]
GROUP BY ca.ca_county, ca.ca_state
ORDER BY revenue DESC, ca.ca_county
LIMIT 100
)"));

  // q08: shopping by shift: which day-parts sell.
  out->push_back(T(8, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT t.t_shift, t.t_meal_time,
       COUNT(*) AS line_items,
       SUM(ss_ext_sales_price) AS revenue
FROM store_sales, time_dim t, date_dim d
WHERE ss_sold_time_sk = t.t_time_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND t.t_meal_time IS NOT NULL
GROUP BY t.t_shift, t.t_meal_time
ORDER BY revenue DESC
)"));

  // q09: basket-size distribution: tickets bucketed by item count.
  out->push_back(T(9, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT basket.items_in_basket, COUNT(*) AS num_baskets
FROM (SELECT ss_ticket_number, COUNT(*) AS items_in_basket
      FROM store_sales, date_dim d
      WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
      GROUP BY ss_ticket_number) basket
GROUP BY basket.items_in_basket
ORDER BY basket.items_in_basket
)"));

  // q10: promotion lift: revenue on promoted vs unpromoted line items.
  out->push_back(T(10, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT CASE WHEN ss_promo_sk IS NULL THEN 'no promo'
            ELSE 'promo' END AS promo_flag,
       COUNT(*) AS line_items,
       SUM(ss_ext_sales_price) AS revenue,
       AVG(ss_ext_discount_amt) AS avg_discount
FROM store_sales, date_dim d
WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
GROUP BY CASE WHEN ss_promo_sk IS NULL THEN 'no promo'
              ELSE 'promo' END
ORDER BY promo_flag
)"));

  // q11..q13: iterative OLAP drill-down family: category -> class -> brand.
  out->push_back(T(11, QueryClass::kAdHoc, QueryFlavor::kIterativeOlap, 1,
                   R"(
define YEAR = random(1998, 2002, uniform);
SELECT i.i_category, SUM(ss_ext_sales_price) AS revenue
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY i.i_category
ORDER BY revenue DESC
)"));
  out->push_back(T(12, QueryClass::kAdHoc, QueryFlavor::kIterativeOlap, 1,
                   R"(
define YEAR = random(1998, 2002, uniform);
define CAT = dist(categories);
SELECT i.i_category, i.i_class, SUM(ss_ext_sales_price) AS revenue
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND i.i_category = '[CAT]'
GROUP BY i.i_category, i.i_class
ORDER BY revenue DESC
)"));
  out->push_back(T(13, QueryClass::kAdHoc, QueryFlavor::kIterativeOlap, 1,
                   R"(
define YEAR = random(1998, 2002, uniform);
define CAT = dist(categories);
SELECT i.i_category, i.i_class, i.i_brand,
       SUM(ss_ext_sales_price) AS revenue,
       RANK() OVER (PARTITION BY i.i_class
                    ORDER BY SUM(ss_ext_sales_price) DESC) AS brand_rank
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND i.i_category = '[CAT]'
GROUP BY i.i_category, i.i_class, i.i_brand
ORDER BY i.i_class, brand_rank
LIMIT 200
)"));

  // q14: weekly seasonality: the comparability-zone curve made visible.
  out->push_back(T(14, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
SELECT d.d_week_seq, COUNT(*) AS line_items,
       SUM(ss_ext_sales_price) AS revenue
FROM store_sales, date_dim d
WHERE ss_sold_date_sk = d.d_date_sk AND d.d_year = [YEAR]
GROUP BY d.d_week_seq
ORDER BY d.d_week_seq
)"));

  // q15: slice by a 30-day window inside one comparability zone.
  out->push_back(T(15, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define SDATE = date(30, 2);
SELECT i.i_category, SUM(ss_ext_sales_price) AS revenue,
       AVG(ss_sales_price) AS avg_price
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_date BETWEEN CAST('[SDATE]' AS DATE)
                   AND (CAST('[SDATE]' AS DATE) + 30)
GROUP BY i.i_category
ORDER BY revenue DESC
)"));

  // q16: top spenders: customer names (frequent-name skew visible).
  out->push_back(T(16, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT c.c_last_name, c.c_first_name,
       SUM(ss_net_paid) AS total_paid
FROM store_sales, customer c, date_dim d
WHERE ss_customer_sk = c.c_customer_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY c.c_last_name, c.c_first_name
ORDER BY total_paid DESC, c.c_last_name
LIMIT 100
)"));

  // q17: current vs transaction address — the circular customer_address
  // relationship the paper highlights (§2.2, Fig. 1).
  out->push_back(T(17, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT sold_to.ca_state AS shipped_state,
       lives_in.ca_state AS home_state,
       COUNT(*) AS cnt
FROM store_sales, customer c,
     customer_address sold_to, customer_address lives_in, date_dim d
WHERE ss_customer_sk = c.c_customer_sk
  AND ss_addr_sk = sold_to.ca_address_sk
  AND c.c_current_addr_sk = lives_in.ca_address_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND sold_to.ca_state <> lives_in.ca_state
GROUP BY sold_to.ca_state, lives_in.ca_state
ORDER BY cnt DESC
LIMIT 100
)"));

  // q18: store revenue per square foot (store attributes in play).
  out->push_back(T(18, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT s.s_store_name, s.s_floor_space,
       SUM(ss_net_paid) / s.s_floor_space AS paid_per_sqft
FROM store_sales, store s, date_dim d
WHERE ss_store_sk = s.s_store_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND s.s_rec_end_date IS NULL
GROUP BY s.s_store_name, s.s_floor_space
ORDER BY paid_per_sqft DESC
LIMIT 100
)"));

  // q19: reasons for returns, ranked.
  out->push_back(T(19, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT r.r_reason_desc,
       COUNT(*) AS returns_cnt,
       SUM(sr_return_amt) AS value_back,
       RANK() OVER (ORDER BY SUM(sr_return_amt) DESC) AS value_rank
FROM store_returns, reason r, date_dim d
WHERE sr_reason_sk = r.r_reason_sk
  AND sr_returned_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY r.r_reason_desc
ORDER BY value_rank
LIMIT 50
)"));

  // q21: gender/marital mix of preferred customers buying in zone 3.
  out->push_back(T(21, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT cd.cd_gender, cd.cd_marital_status, COUNT(DISTINCT c.c_customer_sk)
         AS customers
FROM store_sales, customer c, customer_demographics cd, date_dim d
WHERE ss_customer_sk = c.c_customer_sk
  AND c.c_current_cdemo_sk = cd.cd_demo_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR] AND d.d_moy BETWEEN 11 AND 12
  AND c.c_preferred_cust_flag = 'Y'
GROUP BY cd.cd_gender, cd.cd_marital_status
ORDER BY customers DESC
)"));

  // q22: slow sellers: items with store sales but no December sales.
  out->push_back(T(22, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT i.i_item_id, i.i_item_desc,
       SUM(ss_quantity) AS units
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ss_item_sk NOT IN (SELECT ss_item_sk
                         FROM store_sales, date_dim
                         WHERE ss_sold_date_sk = d_date_sk
                           AND d_year = [YEAR] AND d_moy = 12)
GROUP BY i.i_item_id, i.i_item_desc
ORDER BY units DESC, i.i_item_id
LIMIT 100
)"));

  // q23: discount sensitivity: coupons share of revenue by category.
  out->push_back(T(23, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT i.i_category,
       SUM(ss_coupon_amt) AS coupons,
       SUM(ss_ext_sales_price) AS revenue,
       SUM(ss_coupon_amt) / SUM(ss_ext_sales_price) * 100 AS coupon_pct
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY i.i_category
HAVING SUM(ss_ext_sales_price) > 0
ORDER BY coupon_pct DESC
)"));

  // q24: revision-aware pricing: sales joined to the item revision that
  // was current at the sale date (SCD probe, paper §3.3.2).
  out->push_back(T(24, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define CAT = dist(categories);
SELECT i.i_item_id, COUNT(*) AS line_items,
       MIN(i.i_current_price) AS rev_price_min,
       MAX(i.i_current_price) AS rev_price_max
FROM store_sales, item i, date_dim d
WHERE ss_item_sk = i.i_item_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND i.i_category = '[CAT]'
  AND d.d_date >= i.i_rec_start_date
  AND (i.i_rec_end_date IS NULL OR d.d_date <= i.i_rec_end_date)
GROUP BY i.i_item_id
ORDER BY line_items DESC, i.i_item_id
LIMIT 100
)"));

  // q25: dependents and vehicles: household profile of big baskets.
  out->push_back(T(25, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define DEP = random(2, 7, uniform);
SELECT hd.hd_dep_count, hd.hd_vehicle_count,
       AVG(ss_quantity) AS avg_units,
       COUNT(*) AS line_items
FROM store_sales, household_demographics hd, date_dim d
WHERE ss_hdemo_sk = hd.hd_demo_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND hd.hd_dep_count <= [DEP]
GROUP BY hd.hd_dep_count, hd.hd_vehicle_count
ORDER BY hd.hd_dep_count, hd.hd_vehicle_count
)"));

  // q26: weekend vs weekday revenue by store.
  out->push_back(T(26, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT s.s_store_name,
       SUM(CASE WHEN d.d_weekend = 'Y'
                THEN ss_ext_sales_price ELSE 0 END) AS weekend_rev,
       SUM(CASE WHEN d.d_weekend = 'N'
                THEN ss_ext_sales_price ELSE 0 END) AS weekday_rev
FROM store_sales, store s, date_dim d
WHERE ss_store_sk = s.s_store_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY s.s_store_name
ORDER BY s.s_store_name
)"));

  // q27: quarter-over-quarter store growth via derived tables.
  out->push_back(T(27, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
SELECT cur.store_name,
       cur.revenue AS q4_revenue,
       prior.revenue AS q3_revenue,
       cur.revenue - prior.revenue AS delta
FROM (SELECT s.s_store_name AS store_name, SUM(ss_ext_sales_price) AS revenue
      FROM store_sales, store s, date_dim d
      WHERE ss_store_sk = s.s_store_sk AND ss_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND d.d_qoy = 4
      GROUP BY s.s_store_name) cur,
     (SELECT s.s_store_name AS store_name, SUM(ss_ext_sales_price) AS revenue
      FROM store_sales, store s, date_dim d
      WHERE ss_store_sk = s.s_store_sk AND ss_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR] AND d.d_qoy = 3
      GROUP BY s.s_store_name) prior
WHERE cur.store_name = prior.store_name
ORDER BY delta DESC
LIMIT 100
)"));

  // q28: quantity-bucket price statistics (multi-bucket UNION ALL).
  out->push_back(T(28, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define B1 = random(1, 20, uniform);
define B2 = random(40, 60, uniform);
SELECT 'low' AS bucket, AVG(ss_list_price) AS avg_price,
       COUNT(*) AS cnt, COUNT(DISTINCT ss_list_price) AS distinct_prices
FROM store_sales WHERE ss_quantity BETWEEN 1 AND [B1]
UNION ALL
SELECT 'mid' AS bucket, AVG(ss_list_price) AS avg_price,
       COUNT(*) AS cnt, COUNT(DISTINCT ss_list_price) AS distinct_prices
FROM store_sales WHERE ss_quantity BETWEEN 21 AND [B2]
UNION ALL
SELECT 'high' AS bucket, AVG(ss_list_price) AS avg_price,
       COUNT(*) AS cnt, COUNT(DISTINCT ss_list_price) AS distinct_prices
FROM store_sales WHERE ss_quantity BETWEEN 61 AND 100
ORDER BY bucket
)"));

  // q29: store manager scorecard over an SCD dimension (current revision).
  out->push_back(T(29, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define MOY = random(8, 10, uniform);
define YEAR = random(1998, 2002, uniform);
SELECT s.s_manager, COUNT(DISTINCT ss_ticket_number) AS tickets,
       SUM(ss_net_profit) AS profit
FROM store_sales, store s, date_dim d
WHERE ss_store_sk = s.s_store_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND s.s_rec_end_date IS NULL
  AND d.d_year = [YEAR] AND d.d_moy = [MOY]
GROUP BY s.s_manager
ORDER BY profit DESC
LIMIT 100
)"));

  // q30: data-mining extraction: wide customer purchase profile feed.
  out->push_back(T(30, QueryClass::kAdHoc, QueryFlavor::kDataMining, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT c.c_customer_id, c.c_last_name, c.c_first_name,
       ca.ca_state, cd.cd_gender, cd.cd_education_status,
       COUNT(*) AS line_items,
       SUM(ss_ext_sales_price) AS revenue,
       SUM(ss_net_profit) AS profit,
       AVG(ss_quantity) AS avg_qty
FROM store_sales, customer c, customer_address ca,
     customer_demographics cd, date_dim d
WHERE ss_customer_sk = c.c_customer_sk
  AND c.c_current_addr_sk = ca.ca_address_sk
  AND c.c_current_cdemo_sk = cd.cd_demo_sk
  AND ss_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY c.c_customer_id, c.c_last_name, c.c_first_name,
         ca.ca_state, cd.cd_gender, cd.cd_education_status
ORDER BY revenue DESC
LIMIT 5000
)"));

  // q52: the paper's Fig. 6 ad-hoc example, verbatim modulo substitution
  // tags: brand revenue for one manager's items in a holiday month.
  out->push_back(T(52, QueryClass::kAdHoc, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define MANAGER = random(1, 100, uniform);
SELECT dt.d_year, item.i_brand_id brand_id, item.i_brand brand,
       SUM(ss_ext_sales_price) ext_price
FROM date_dim dt, store_sales, item
WHERE dt.d_date_sk = store_sales.ss_sold_date_sk
  AND store_sales.ss_item_sk = item.i_item_sk
  AND item.i_manager_id = [MANAGER]
  AND dt.d_moy = 11
  AND dt.d_year = [YEAR]
GROUP BY dt.d_year, item.i_brand, item.i_brand_id
ORDER BY dt.d_year, ext_price DESC, brand_id
)"));
}

}  // namespace internal_templates
}  // namespace tpcds
