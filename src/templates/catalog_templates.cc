// Templates 20 and 31..55 (minus 52): the catalog channel and the shared
// inventory fact table — the *reporting* part of the schema, where complex
// auxiliary structures are permitted (paper §2.2, §4.1).

#include "templates/templates.h"

namespace tpcds {
namespace internal_templates {
namespace {

QueryTemplate T(int id, QueryClass cls, QueryFlavor flavor, int family,
                const char* text) {
  QueryTemplate t;
  t.id = id;
  t.name = "q" + std::string(id < 10 ? "0" : "") + std::to_string(id);
  t.query_class = cls;
  t.flavor = flavor;
  t.olap_family = family;
  t.text = text;
  return t;
}

}  // namespace

void AppendCatalogTemplates(std::vector<QueryTemplate>* out) {
  // q20: the paper's Fig. 7 reporting example, verbatim modulo
  // substitution tags: item revenue share within its class.
  out->push_back(T(20, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define CATS = list(categories, 3);
define SDATE = date(30, 1);
SELECT i_item_desc, i_category, i_class, i_current_price,
       SUM(cs_ext_sales_price) AS itemrevenue,
       SUM(cs_ext_sales_price)*100/SUM(SUM(cs_ext_sales_price)) OVER
           (PARTITION BY i_class) AS revenueratio
FROM catalog_sales, item, date_dim
WHERE cs_item_sk = i_item_sk
  AND i_category IN ([CATS])
  AND cs_sold_date_sk = d_date_sk
  AND d_date BETWEEN '[SDATE]'
                 AND (CAST('[SDATE]' AS DATE) + 30)
GROUP BY i_item_id, i_item_desc, i_category, i_class, i_current_price
ORDER BY i_category, i_class, i_item_id, i_item_desc, revenueratio
)"));

  // q31: catalog revenue by call center.
  out->push_back(T(31, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT cc.cc_name, cc.cc_class,
       SUM(cs_net_paid) AS paid,
       SUM(cs_net_profit) AS profit
FROM catalog_sales, call_center cc, date_dim d
WHERE cs_call_center_sk = cc.cc_call_center_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY cc.cc_name, cc.cc_class
ORDER BY profit DESC
)"));

  // q32: catalog page effectiveness per catalog number.
  out->push_back(T(32, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
SELECT cp.cp_catalog_number,
       COUNT(*) AS line_items,
       SUM(cs_ext_sales_price) AS revenue
FROM catalog_sales, catalog_page cp, date_dim d
WHERE cs_catalog_page_sk = cp.cp_catalog_page_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY cp.cp_catalog_number
ORDER BY revenue DESC
LIMIT 100
)"));

  // q33: shipping lag: days between order and ship by ship mode.
  out->push_back(T(33, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT sm.sm_type, sm.sm_carrier,
       AVG(cs_ship_date_sk - cs_sold_date_sk) AS avg_lag_days,
       COUNT(*) AS shipments
FROM catalog_sales, ship_mode sm, date_dim d
WHERE cs_ship_mode_sk = sm.sm_ship_mode_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY sm.sm_type, sm.sm_carrier
ORDER BY avg_lag_days
)"));

  // q34: inventory coverage: weeks of stock by warehouse.
  out->push_back(T(34, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define MOY = random(1, 7, uniform);
define YEAR = random(1998, 2002, uniform);
SELECT w.w_warehouse_name,
       AVG(inv_quantity_on_hand) AS avg_on_hand,
       MIN(inv_quantity_on_hand) AS min_on_hand,
       MAX(inv_quantity_on_hand) AS max_on_hand
FROM inventory, warehouse w, date_dim d
WHERE inv_warehouse_sk = w.w_warehouse_sk
  AND inv_date_sk = d.d_date_sk
  AND d.d_year = [YEAR] AND d.d_moy = [MOY]
GROUP BY w.w_warehouse_name
ORDER BY w.w_warehouse_name
)"));

  // q35: items whose stock swings more than 50% month over month.
  out->push_back(T(35, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
define MOY = random(1, 6, uniform);
SELECT cur.item_sk,
       cur.qty AS this_month, nxt.qty AS next_month,
       nxt.qty / cur.qty AS swing
FROM (SELECT inv_item_sk AS item_sk, SUM(inv_quantity_on_hand) AS qty
      FROM inventory, date_dim
      WHERE inv_date_sk = d_date_sk AND d_year = [YEAR] AND d_moy = [MOY]
      GROUP BY inv_item_sk) cur,
     (SELECT inv_item_sk AS item_sk, SUM(inv_quantity_on_hand) AS qty
      FROM inventory, date_dim
      WHERE inv_date_sk = d_date_sk AND d_year = [YEAR] AND d_moy = [MOY] + 1
      GROUP BY inv_item_sk) nxt
WHERE cur.item_sk = nxt.item_sk
  AND cur.qty > 0
  AND (nxt.qty / cur.qty > 1.5 OR nxt.qty / cur.qty < 0.5)
ORDER BY swing DESC, cur.item_sk
LIMIT 100
)"));

  // q36: catalog returns by reason and refund style.
  out->push_back(T(36, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT r.r_reason_desc,
       SUM(cr_refunded_cash) AS cash,
       SUM(cr_reversed_charge) AS reversed,
       SUM(cr_store_credit) AS credit
FROM catalog_returns, reason r, date_dim d
WHERE cr_reason_sk = r.r_reason_sk
  AND cr_returned_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY r.r_reason_desc
ORDER BY cash DESC
LIMIT 50
)"));

  // q37: bill-to vs ship-to: gift orders by state pair.
  out->push_back(T(37, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT bill.ca_state AS bill_state, ship.ca_state AS ship_state,
       COUNT(*) AS orders,
       SUM(cs_ext_ship_cost) AS ship_cost
FROM catalog_sales, customer_address bill, customer_address ship, date_dim d
WHERE cs_bill_addr_sk = bill.ca_address_sk
  AND cs_ship_addr_sk = ship.ca_address_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND cs_bill_customer_sk <> cs_ship_customer_sk
GROUP BY bill.ca_state, ship.ca_state
ORDER BY orders DESC
LIMIT 100
)"));

  // q38: catalog revenue share per item class (window over classes).
  out->push_back(T(38, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define CAT = dist(categories);
SELECT i.i_class,
       SUM(cs_ext_sales_price) AS revenue,
       SUM(cs_ext_sales_price) * 100 /
           SUM(SUM(cs_ext_sales_price)) OVER (PARTITION BY i.i_category)
           AS class_share
FROM catalog_sales, item i, date_dim d
WHERE cs_item_sk = i.i_item_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND i.i_category = '[CAT]'
GROUP BY i.i_category, i.i_class
ORDER BY class_share DESC
)"));

  // q39: stddev of inventory across warehouses (statistics function).
  out->push_back(T(39, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
define MOY = random(1, 7, uniform);
SELECT w.w_warehouse_name, i.i_item_id,
       AVG(inv_quantity_on_hand) AS mean_qty,
       STDDEV_SAMP(inv_quantity_on_hand) AS sd_qty
FROM inventory, item i, warehouse w, date_dim d
WHERE inv_item_sk = i.i_item_sk
  AND inv_warehouse_sk = w.w_warehouse_sk
  AND inv_date_sk = d.d_date_sk
  AND d.d_year = [YEAR] AND d.d_moy = [MOY]
GROUP BY w.w_warehouse_name, i.i_item_id
HAVING STDDEV_SAMP(inv_quantity_on_hand) > 100
ORDER BY sd_qty DESC, i.i_item_id
LIMIT 100
)"));

  // q40: catalog sales before/after a price-change date per item.
  out->push_back(T(40, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define SDATE = date(60, 2);
SELECT i.i_item_id,
       SUM(CASE WHEN d.d_date < CAST('[SDATE]' AS DATE) + 30
                THEN cs_ext_sales_price ELSE 0 END) AS before_rev,
       SUM(CASE WHEN d.d_date >= CAST('[SDATE]' AS DATE) + 30
                THEN cs_ext_sales_price ELSE 0 END) AS after_rev
FROM catalog_sales, item i, date_dim d
WHERE cs_item_sk = i.i_item_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_date BETWEEN CAST('[SDATE]' AS DATE)
                   AND (CAST('[SDATE]' AS DATE) + 60)
GROUP BY i.i_item_id
ORDER BY i.i_item_id
LIMIT 100
)"));

  // q41..q43: iterative OLAP drill on the catalog channel by geography.
  out->push_back(T(41, QueryClass::kReporting, QueryFlavor::kIterativeOlap,
                   2, R"(
define YEAR = random(1998, 2002, uniform);
SELECT ca.ca_state, SUM(cs_ext_sales_price) AS revenue
FROM catalog_sales, customer_address ca, date_dim d
WHERE cs_bill_addr_sk = ca.ca_address_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY ca.ca_state
ORDER BY revenue DESC
LIMIT 25
)"));
  out->push_back(T(42, QueryClass::kReporting, QueryFlavor::kIterativeOlap,
                   2, R"(
define YEAR = random(1998, 2002, uniform);
define STATE = dist(states);
SELECT ca.ca_county, SUM(cs_ext_sales_price) AS revenue
FROM catalog_sales, customer_address ca, date_dim d
WHERE cs_bill_addr_sk = ca.ca_address_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ca.ca_state = '[STATE]'
GROUP BY ca.ca_county
ORDER BY revenue DESC
LIMIT 50
)"));
  out->push_back(T(43, QueryClass::kReporting, QueryFlavor::kIterativeOlap,
                   2, R"(
define YEAR = random(1998, 2002, uniform);
define STATE = dist(states);
SELECT ca.ca_county, ca.ca_city, SUM(cs_ext_sales_price) AS revenue,
       RANK() OVER (PARTITION BY ca.ca_county
                    ORDER BY SUM(cs_ext_sales_price) DESC) AS city_rank
FROM catalog_sales, customer_address ca, date_dim d
WHERE cs_bill_addr_sk = ca.ca_address_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND ca.ca_state = '[STATE]'
GROUP BY ca.ca_county, ca.ca_city
ORDER BY ca.ca_county, city_rank
LIMIT 200
)"));

  // q44: top items by net profit with rank window.
  out->push_back(T(44, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT ranked.i_item_id, ranked.profit, ranked.profit_rank
FROM (SELECT i.i_item_id AS i_item_id,
             SUM(cs_net_profit) AS profit,
             RANK() OVER (ORDER BY SUM(cs_net_profit) DESC) AS profit_rank
      FROM catalog_sales, item i, date_dim d
      WHERE cs_item_sk = i.i_item_sk
        AND cs_sold_date_sk = d.d_date_sk
        AND d.d_year = [YEAR]
      GROUP BY i.i_item_id) ranked
WHERE ranked.profit_rank <= 50
ORDER BY ranked.profit_rank
)"));

  // q45: catalog orders shipped unusually late (residual join predicate).
  out->push_back(T(45, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define LAG = random(60, 100, uniform);
SELECT w.w_warehouse_name, sm.sm_type,
       COUNT(*) AS late_orders
FROM catalog_sales, warehouse w, ship_mode sm, date_dim d
WHERE cs_warehouse_sk = w.w_warehouse_sk
  AND cs_ship_mode_sk = sm.sm_ship_mode_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND cs_ship_date_sk - cs_sold_date_sk > [LAG]
GROUP BY w.w_warehouse_name, sm.sm_type
ORDER BY late_orders DESC
)"));

  // q46: repeat catalog buyers (HAVING on distinct orders).
  out->push_back(T(46, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
define MINORDERS = random(2, 4, uniform);
SELECT c.c_customer_id, c.c_last_name,
       COUNT(DISTINCT cs_order_number) AS orders,
       SUM(cs_net_paid) AS paid
FROM catalog_sales, customer c, date_dim d
WHERE cs_bill_customer_sk = c.c_customer_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY c.c_customer_id, c.c_last_name
HAVING COUNT(DISTINCT cs_order_number) >= [MINORDERS]
ORDER BY orders DESC, paid DESC
LIMIT 100
)"));

  // q47: month-by-month catalog revenue matrix for one year.
  out->push_back(T(47, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT d.d_moy,
       SUM(cs_ext_sales_price) AS revenue,
       SUM(cs_ext_sales_price) * 100 /
           SUM(SUM(cs_ext_sales_price)) OVER (PARTITION BY d.d_year)
           AS share_of_year
FROM catalog_sales, date_dim d
WHERE cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY d.d_year, d.d_moy
ORDER BY d.d_moy
)"));

  // q48: current-revision call centers and their return exposure.
  out->push_back(T(48, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT cc.cc_name, cc.cc_manager,
       SUM(cr_return_amount) AS returned_value,
       SUM(cr_net_loss) AS net_loss
FROM catalog_returns, call_center cc, date_dim d
WHERE cr_call_center_sk = cc.cc_call_center_sk
  AND cr_returned_date_sk = d.d_date_sk
  AND cc.cc_rec_end_date IS NULL
  AND d.d_year = [YEAR]
GROUP BY cc.cc_name, cc.cc_manager
ORDER BY net_loss DESC
)"));

  // q49: inventory on hand vs catalog demand per item (two facts).
  out->push_back(T(49, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
define MOY = random(1, 7, uniform);
SELECT demand.item_sk,
       demand.units_sold, stock.units_on_hand,
       stock.units_on_hand / demand.units_sold AS cover_ratio
FROM (SELECT cs_item_sk AS item_sk, SUM(cs_quantity) AS units_sold
      FROM catalog_sales, date_dim
      WHERE cs_sold_date_sk = d_date_sk
        AND d_year = [YEAR] AND d_moy = [MOY]
      GROUP BY cs_item_sk) demand,
     (SELECT inv_item_sk AS item_sk, SUM(inv_quantity_on_hand)
                 AS units_on_hand
      FROM inventory, date_dim
      WHERE inv_date_sk = d_date_sk
        AND d_year = [YEAR] AND d_moy = [MOY]
      GROUP BY inv_item_sk) stock
WHERE demand.item_sk = stock.item_sk
  AND demand.units_sold > 0
ORDER BY cover_ratio, demand.item_sk
LIMIT 100
)"));

  // q50: gift share of catalog revenue by category (CASE aggregation).
  out->push_back(T(50, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT i.i_category,
       SUM(CASE WHEN cs_bill_customer_sk <> cs_ship_customer_sk
                THEN cs_ext_sales_price ELSE 0 END) AS gift_revenue,
       SUM(cs_ext_sales_price) AS revenue,
       SUM(CASE WHEN cs_bill_customer_sk <> cs_ship_customer_sk
                THEN cs_ext_sales_price ELSE 0 END) * 100 /
           SUM(cs_ext_sales_price) AS gift_pct
FROM catalog_sales, item i, date_dim d
WHERE cs_item_sk = i.i_item_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY i.i_category
HAVING SUM(cs_ext_sales_price) > 0
ORDER BY gift_pct DESC
)"));

  // q51: buyers who returned more than they kept (CTE + HAVING).
  out->push_back(T(51, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
WITH bought AS (
  SELECT cs_bill_customer_sk AS customer_sk, SUM(cs_quantity) AS units
  FROM catalog_sales, date_dim
  WHERE cs_sold_date_sk = d_date_sk AND d_year = [YEAR]
  GROUP BY cs_bill_customer_sk
), sent_back AS (
  SELECT cr_refunded_customer_sk AS customer_sk,
         SUM(cr_return_quantity) AS units
  FROM catalog_returns, date_dim
  WHERE cr_returned_date_sk = d_date_sk AND d_year = [YEAR]
  GROUP BY cr_refunded_customer_sk
)
SELECT b.customer_sk, b.units AS bought_units, s.units AS returned_units
FROM bought b, sent_back s
WHERE b.customer_sk = s.customer_sk
  AND s.units * 2 > b.units
ORDER BY returned_units DESC, b.customer_sk
LIMIT 100
)"));

  // q53: promotions that actually moved catalog volume.
  out->push_back(T(53, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2002, uniform);
SELECT p.p_promo_name, p.p_channel_catalog,
       COUNT(*) AS line_items,
       SUM(cs_ext_sales_price) AS revenue
FROM catalog_sales, promotion p, date_dim d
WHERE cs_promo_sk = p.p_promo_sk
  AND cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
  AND p.p_discount_active = 'Y'
GROUP BY p.p_promo_name, p.p_channel_catalog
ORDER BY revenue DESC
LIMIT 100
)"));

  // q54: data-mining extraction: order-level feature vector feed.
  out->push_back(T(54, QueryClass::kReporting, QueryFlavor::kDataMining, 0,
                   R"(
define YEAR = random(1998, 2002, uniform);
SELECT cs_order_number,
       COUNT(*) AS line_items,
       SUM(cs_quantity) AS units,
       SUM(cs_ext_sales_price) AS revenue,
       SUM(cs_ext_ship_cost) AS ship_cost,
       SUM(cs_net_profit) AS profit,
       AVG(cs_sales_price) AS avg_price,
       MAX(cs_ext_list_price) AS max_list
FROM catalog_sales, date_dim d
WHERE cs_sold_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY cs_order_number
ORDER BY revenue DESC
LIMIT 5000
)"));

  // q55: quarterly stock build-up ahead of the holiday zone.
  out->push_back(T(55, QueryClass::kReporting, QueryFlavor::kStandard, 0, R"(
define YEAR = random(1998, 2001, uniform);
SELECT d.d_qoy, w.w_warehouse_name,
       SUM(inv_quantity_on_hand) AS total_stock
FROM inventory, warehouse w, date_dim d
WHERE inv_warehouse_sk = w.w_warehouse_sk
  AND inv_date_sk = d.d_date_sk
  AND d.d_year = [YEAR]
GROUP BY d.d_qoy, w.w_warehouse_name
ORDER BY w.w_warehouse_name, d.d_qoy
)"));
}

}  // namespace internal_templates
}  // namespace tpcds
