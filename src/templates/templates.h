#ifndef TPCDS_TEMPLATES_TEMPLATES_H_
#define TPCDS_TEMPLATES_TEMPLATES_H_

#include <vector>

#include "qgen/template.h"

namespace tpcds {

/// The 99 query templates of the workload (paper §4.1): ad-hoc (store/web
/// channels), reporting (catalog channel incl. inventory), and hybrid
/// cross-channel queries, with iterative-OLAP drill sequences and
/// data-mining extractions mixed in. Template 52 and template 20 are the
/// paper's Fig. 6 / Fig. 7 examples.
const std::vector<QueryTemplate>& AllTemplates();

/// Template by id (1..99); nullptr when out of range.
const QueryTemplate* FindTemplate(int id);

namespace internal_templates {
// Implementation detail: per-channel template blocks.
void AppendStoreTemplates(std::vector<QueryTemplate>* out);     // 1..30
void AppendCatalogTemplates(std::vector<QueryTemplate>* out);   // 31..55
void AppendWebTemplates(std::vector<QueryTemplate>* out);       // 56..75
void AppendCrossChannelTemplates(std::vector<QueryTemplate>* out);  // 76..99
}  // namespace internal_templates

}  // namespace tpcds

#endif  // TPCDS_TEMPLATES_TEMPLATES_H_
