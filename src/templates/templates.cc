#include "templates/templates.h"

#include <algorithm>

namespace tpcds {

const std::vector<QueryTemplate>& AllTemplates() {
  static const std::vector<QueryTemplate>& templates = *[] {
    auto* v = new std::vector<QueryTemplate>();
    internal_templates::AppendStoreTemplates(v);
    internal_templates::AppendCatalogTemplates(v);
    internal_templates::AppendWebTemplates(v);
    internal_templates::AppendCrossChannelTemplates(v);
    std::sort(v->begin(), v->end(),
              [](const QueryTemplate& a, const QueryTemplate& b) {
                return a.id < b.id;
              });
    return v;
  }();
  return templates;
}

const QueryTemplate* FindTemplate(int id) {
  const std::vector<QueryTemplate>& all = AllTemplates();
  for (const QueryTemplate& t : all) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

}  // namespace tpcds
