#ifndef TPCDS_UTIL_WAL_H_
#define TPCDS_UTIL_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains incremental
/// computations: Crc32(b, nb, Crc32(a, na)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Logical record kinds of the data-maintenance write-ahead log. The util
/// layer only frames records; payload encodings belong to the engine's
/// recovery module (src/engine/recovery.cc).
enum class WalRecordType : uint8_t {
  kOpBegin = 1,    // start of one refresh operation (payload: op name)
  kUpdateCell = 2, // one cell overwrite with before- and after-image
  kAppendRow = 3,  // one appended row (after-image of every cell)
  kDeleteRows = 4, // clustered delete: row indexes + before-images
  kOpCommit = 5,   // commit marker: the operation is durable
};

struct WalRecord {
  WalRecordType type = WalRecordType::kOpBegin;
  uint64_t lsn = 0;
  std::string payload;
};

/// Append-only log of data-maintenance mutations.
///
/// File layout: an 12-byte header ("TPCDSWAL" + u32 version), then records
///
///   u32 payload_len | u32 crc | u8 type | u64 lsn | payload bytes
///
/// where crc covers everything after itself (type, lsn, payload). Each
/// record is assigned a monotonically increasing LSN at append time; the
/// commit marker of an operation is flushed so a crash can lose at most
/// the uncommitted tail. Fault sites: "wal-append" fires on any record
/// append, "wal-commit" only on commit markers. With torn writes enabled,
/// an injected append fault additionally leaves a partial record prefix
/// in the file — the torn tail recovery must truncate.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates (truncates) the log at `path` and writes the header.
  Status Open(const std::string& path);

  /// Appends one record; returns its LSN. Write-ahead contract: on error
  /// nothing the caller can replay was made durable (except a torn prefix
  /// in torn-write mode, which recovery discards).
  Result<uint64_t> Append(WalRecordType type, const std::string& payload);

  /// Appends a commit marker and flushes the stream, making every record
  /// of the operation durable.
  Result<uint64_t> AppendCommit(const std::string& payload);

  /// Flushes buffered records to the OS.
  Status Sync();
  Status Close();

  /// Simulates torn writes: an injected "wal-append"/"wal-commit" fault
  /// leaves the first half of the encoded record in the file.
  void set_torn_writes(bool torn) { torn_writes_ = torn; }

  uint64_t records_written() const { return records_; }
  uint64_t next_lsn() const { return next_lsn_; }
  const std::string& path() const { return path_; }

 private:
  Result<uint64_t> AppendAt(const char* site, WalRecordType type,
                            const std::string& payload);

  std::ofstream out_;
  std::string path_;
  uint64_t next_lsn_ = 1;
  uint64_t records_ = 0;
  bool torn_writes_ = false;
  bool failed_ = false;
};

/// Everything a scan of the log yields: the well-formed record prefix,
/// plus how many trailing bytes were discarded as a torn tail.
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t torn_bytes = 0;
  bool truncated_tail = false;
};

/// Reads a WAL back. A short or CRC-failing record at the physical end of
/// the file is a torn tail and is truncated (counted in `torn_bytes`); a
/// CRC failure anywhere else is corruption of committed state and yields
/// kDataLoss rather than a silently shortened history.
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace tpcds

#endif  // TPCDS_UTIL_WAL_H_
