#ifndef TPCDS_UTIL_STOPWATCH_H_
#define TPCDS_UTIL_STOPWATCH_H_

#include <chrono>

namespace tpcds {

/// Monotonic wall-clock timer for the benchmark driver's timed intervals
/// (load test, query runs, data-maintenance run).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tpcds

#endif  // TPCDS_UTIL_STOPWATCH_H_
