#ifndef TPCDS_UTIL_RANDOM_H_
#define TPCDS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpcds {

/// Scrambles a 64-bit value into a well-mixed 64-bit value (SplitMix64
/// finalizer). Used both to derive per-column seeds and to whiten raw LCG
/// output, whose low bits alone are weak.
uint64_t Mix64(uint64_t x);

/// A deterministic, seekable pseudo-random stream.
///
/// The core is a 64-bit multiplicative-congruential generator
/// (Knuth MMIX constants) whose raw output is whitened with Mix64. The
/// defining feature, copied from the official dsdgen design, is *seeking*:
/// the stream can jump to its n-th draw in O(log n) via modular
/// exponentiation of the LCG transition. When every column consumes a fixed
/// number of draws per row, any worker can position its stream at an
/// arbitrary row and generate a chunk that is bit-identical to what a serial
/// pass would have produced.
class RngStream {
 public:
  explicit RngStream(uint64_t seed) : seed_(seed), state_(Mix64(seed)) {}

  /// Raw next value, advancing the stream by exactly one draw.
  uint64_t NextUint64();

  /// Uniform double in [0, 1), one draw.
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive, one draw. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate via the Acklam inverse-CDF approximation.
  /// Exactly one draw (unlike Box-Muller), which keeps draws-per-row fixed.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation, one draw.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Exactly one draw. Weights must be non-negative, not all 0.
  size_t WeightedPick(const std::vector<double>& weights);

  /// Zipf-like skewed rank in [0, n), exactly one draw. Uses the
  /// continuous power-law inverse CDF P(rank <= r) = ((r+1)/n)^(1-theta):
  /// theta = 0 is the uniform distribution, theta -> 1 concentrates the
  /// mass on rank 0 (the "hot" item). Requires n > 0 and theta in [0, 1).
  int64_t ZipfInt(int64_t n, double theta);

  /// Repositions the stream so the next call to NextUint64() returns the
  /// draw with absolute index `offset` (0-based from the seed state).
  /// O(log offset); may seek forwards or backwards.
  void SeekTo(uint64_t offset);

  /// Number of draws consumed so far (equivalently, the absolute index of
  /// the next draw).
  uint64_t offset() const { return offset_; }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  uint64_t state_;
  uint64_t offset_ = 0;
};

/// Derives a stable sub-seed for a (table, column) pair from a master seed,
/// so that every column owns an independent stream.
uint64_t DeriveSeed(uint64_t master_seed, uint64_t table_id,
                    uint64_t column_id);

}  // namespace tpcds

#endif  // TPCDS_UTIL_RANDOM_H_
