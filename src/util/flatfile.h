#ifndef TPCDS_UTIL_FLATFILE_H_
#define TPCDS_UTIL_FLATFILE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// Sink for generated rows. The data generator writes through this
/// interface so tables can go to '|'-delimited flat files (the dsdgen
/// format), be captured in memory for tests, or stream straight into the
/// query engine's loader without touching disk.
class RowSink {
 public:
  virtual ~RowSink() = default;

  /// Consumes one row; `fields` are already rendered to text, NULL is the
  /// empty string (dsdgen convention).
  virtual Status Append(const std::vector<std::string>& fields) = 0;
};

/// Writes rows as '|'-delimited, '\n'-terminated records — the flat-file
/// format of the official dsdgen ("1|AAAAAAAABAAAAAAA|1997-03-13|...|").
/// A trailing '|' is emitted after the last field, matching dsdgen.
class FlatFileWriter : public RowSink {
 public:
  FlatFileWriter() = default;
  ~FlatFileWriter() override;

  FlatFileWriter(const FlatFileWriter&) = delete;
  FlatFileWriter& operator=(const FlatFileWriter&) = delete;

  Status Open(const std::string& path);
  Status Append(const std::vector<std::string>& fields) override;
  Status Close();

  /// Bytes written so far (the "raw data size" of the table).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t rows_written() const { return rows_written_; }

 private:
  std::ofstream out_;
  std::string path_;
  uint64_t bytes_written_ = 0;
  uint64_t rows_written_ = 0;
  /// First write/close error; latched so a mid-table short write cannot be
  /// lost by later successful-looking calls (fault sites io-write/io-close).
  Status failed_;
};

/// Captures rows in memory; used by tests and by the in-process loader.
class MemoryRowSink : public RowSink {
 public:
  Status Append(const std::vector<std::string>& fields) override {
    rows_.push_back(fields);
    return Status::OK();
  }

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  std::vector<std::vector<std::string>>& mutable_rows() { return rows_; }

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Counts rows and bytes without storing anything; used by throughput
/// benchmarks and raw-size audits.
class CountingRowSink : public RowSink {
 public:
  Status Append(const std::vector<std::string>& fields) override {
    ++rows_;
    for (const std::string& f : fields) bytes_ += f.size() + 1;  // field + '|'
    bytes_ += 1;  // newline
    return Status::OK();
  }

  uint64_t rows() const { return rows_; }
  uint64_t bytes() const { return bytes_; }

 private:
  uint64_t rows_ = 0;
  uint64_t bytes_ = 0;
};

/// Reads '|'-delimited flat files back; the refresh/ETL pipeline consumes
/// generated update sets through this reader.
class FlatFileReader {
 public:
  Status Open(const std::string& path);

  /// Reads the next record into `fields`; returns false at end of file.
  bool Next(std::vector<std::string>* fields);

 private:
  std::ifstream in_;
};

}  // namespace tpcds

#endif  // TPCDS_UTIL_FLATFILE_H_
