#ifndef TPCDS_UTIL_THREADPOOL_H_
#define TPCDS_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpcds {

/// Fixed-size worker pool. The benchmark driver runs its S concurrent query
/// streams on this pool, and the data generator uses it for chunk-parallel
/// table generation.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks may run in any order across workers.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and every worker is idle.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace tpcds

#endif  // TPCDS_UTIL_THREADPOOL_H_
