#ifndef TPCDS_UTIL_STATUS_H_
#define TPCDS_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace tpcds {

/// Error categories used across the library. Modelled on the Arrow/RocksDB
/// convention: functions that can fail return a Status (or a Result<T>)
/// instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kIoError,
  kParseError,
  kInternal,
  kDeadlineExceeded,   // query governor: per-query timeout expired
  kResourceExhausted,  // query governor: memory or row budget exceeded
  kCancelled,          // external cancellation or injected fault
  kDataLoss,           // durable state failed CRC/consistency checks
};

/// Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK or an error code with a message.
///
/// The OK status carries no allocation; error statuses carry a message that
/// should describe the failure in enough detail to act on it.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for logging; "OK" for success.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates an error Status out of the enclosing function.
#define TPCDS_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::tpcds::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace tpcds

#endif  // TPCDS_UTIL_STATUS_H_
