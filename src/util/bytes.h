#ifndef TPCDS_UTIL_BYTES_H_
#define TPCDS_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// Little-endian append/read primitives shared by the binary durable
/// formats (checkpoint files, WAL record payloads). Strings are encoded as
/// a u32 length prefix followed by the raw bytes.

inline void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

inline void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline void PutLenString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over a byte buffer. Any overrun reports kDataLoss
/// carrying the buffer's context label, so truncated or bit-flipped durable
/// state fails loudly instead of being read as garbage.
class ByteReader {
 public:
  ByteReader(const std::string& data, std::string context)
      : data_(data), context_(std::move(context)) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::DataLoss(context_ + ": truncated at offset " +
                              std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<uint8_t> ReadU8() {
    TPCDS_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() {
    TPCDS_RETURN_NOT_OK(Need(4));
    const auto* p = reinterpret_cast<const uint8_t*>(data_.data() + pos_);
    pos_ += 4;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }

  Result<uint64_t> ReadU64() {
    TPCDS_ASSIGN_OR_RETURN(uint32_t lo, ReadU32());
    TPCDS_ASSIGN_OR_RETURN(uint32_t hi, ReadU32());
    return static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  }

  Result<std::string> ReadLenString() {
    TPCDS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    return ReadBytes(len);
  }

  Result<std::string> ReadBytes(size_t n) {
    TPCDS_RETURN_NOT_OK(Need(n));
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  Status ReadMagic(const char magic[8]) {
    TPCDS_RETURN_NOT_OK(Need(8));
    if (data_.compare(pos_, 8, magic, 8) != 0) {
      return Status::DataLoss(context_ + ": bad magic");
    }
    pos_ += 8;
    return Status::OK();
  }

 private:
  const std::string& data_;
  std::string context_;
  size_t pos_ = 0;
};

}  // namespace tpcds

#endif  // TPCDS_UTIL_BYTES_H_
