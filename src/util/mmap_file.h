#ifndef TPCDS_UTIL_MMAP_FILE_H_
#define TPCDS_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// A read-only memory-mapped file. The mapping stays valid for the
/// object's whole lifetime, so data structures pointing into it (mmap'd
/// checkpoint columns) keep a shared_ptr to the MappedFile as their
/// keep-alive token; the pages are unmapped when the last owner drops it.
///
/// The map is private and read-only: writes through the engine go to
/// copy-on-write heap storage (StorageColumn::EnsureOwned), never back
/// into the file, so one checkpoint can back any number of processes and
/// dataset generations simultaneously.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with kNotFound if the file is missing
  /// and kIoError if the mmap itself fails (caller may fall back to a
  /// heap read).
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, const char* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tpcds

#endif  // TPCDS_UTIL_MMAP_FILE_H_
