#include "util/decimal.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tpcds {

Decimal Decimal::FromDouble(double value) {
  double scaled = value * kScale;
  return Decimal(static_cast<int64_t>(
      scaled >= 0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5)));
}

Result<Decimal> Decimal::Parse(const std::string& text) {
  if (text.empty()) return Status::ParseError("empty decimal literal");
  const char* p = text.c_str();
  bool negative = false;
  if (*p == '-' || *p == '+') {
    negative = (*p == '-');
    ++p;
  }
  if (!std::isdigit(static_cast<unsigned char>(*p)) && *p != '.') {
    return Status::ParseError("invalid decimal literal: '" + text + "'");
  }
  int64_t units = 0;
  while (std::isdigit(static_cast<unsigned char>(*p))) {
    units = units * 10 + (*p - '0');
    ++p;
  }
  int64_t cents = units * kScale;
  if (*p == '.') {
    ++p;
    // First two fractional digits contribute; a third rounds.
    int64_t frac = 0;
    int digits = 0;
    while (std::isdigit(static_cast<unsigned char>(*p))) {
      if (digits < 2) {
        frac = frac * 10 + (*p - '0');
      } else if (digits == 2 && *p >= '5') {
        ++frac;
      }
      ++digits;
      ++p;
    }
    if (digits == 0) {
      return Status::ParseError("invalid decimal literal: '" + text + "'");
    }
    if (digits == 1) frac *= 10;
    cents += frac;
  }
  if (*p != '\0') {
    return Status::ParseError("trailing garbage in decimal: '" + text + "'");
  }
  return Decimal::FromCents(negative ? -cents : cents);
}

std::string Decimal::ToString() const {
  int64_t c = cents_;
  const char* sign = "";
  if (c < 0) {
    sign = "-";
    c = -c;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%lld.%02lld", sign,
                static_cast<long long>(c / kScale),
                static_cast<long long>(c % kScale));
  return buf;
}

Decimal Decimal::MultipliedBy(double factor) const {
  double scaled = static_cast<double>(cents_) * factor;
  return Decimal::FromCents(static_cast<int64_t>(
      scaled >= 0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5)));
}

}  // namespace tpcds
