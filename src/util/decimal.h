#ifndef TPCDS_UTIL_DECIMAL_H_
#define TPCDS_UTIL_DECIMAL_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace tpcds {

/// Fixed-point decimal with two fractional digits, the scale used by every
/// monetary column in the TPC-DS schema (DECIMAL(7,2)). Stored as an
/// int64 count of hundredths ("cents"), so sums over billions of fact rows
/// stay exact. Multiplication/division round half away from zero, matching
/// typical money semantics.
class Decimal {
 public:
  static constexpr int64_t kScale = 100;

  Decimal() : cents_(0) {}

  /// Builds from a raw count of hundredths.
  static Decimal FromCents(int64_t cents) { return Decimal(cents); }
  /// Builds from a whole number of units (e.g. dollars).
  static Decimal FromUnits(int64_t units) { return Decimal(units * kScale); }
  /// Builds from a double, rounding half away from zero to 2 digits.
  static Decimal FromDouble(double value);
  /// Parses "[-]digits[.digits]"; more than 2 fractional digits round.
  static Result<Decimal> Parse(const std::string& text);

  int64_t cents() const { return cents_; }
  double ToDouble() const { return static_cast<double>(cents_) / kScale; }

  /// Renders "[-]units.cc" with exactly two fractional digits.
  std::string ToString() const;

  Decimal operator+(Decimal o) const { return Decimal(cents_ + o.cents_); }
  Decimal operator-(Decimal o) const { return Decimal(cents_ - o.cents_); }
  Decimal operator-() const { return Decimal(-cents_); }
  Decimal& operator+=(Decimal o) {
    cents_ += o.cents_;
    return *this;
  }
  Decimal& operator-=(Decimal o) {
    cents_ -= o.cents_;
    return *this;
  }

  /// Scales by an integer factor (e.g. price * quantity); exact.
  Decimal operator*(int64_t factor) const { return Decimal(cents_ * factor); }

  /// Scales by a double factor (e.g. price * 0.07 tax), rounding to cents.
  Decimal MultipliedBy(double factor) const;

  friend bool operator==(Decimal a, Decimal b) = default;
  friend auto operator<=>(Decimal a, Decimal b) {
    return a.cents_ <=> b.cents_;
  }

 private:
  explicit Decimal(int64_t cents) : cents_(cents) {}

  int64_t cents_;
};

}  // namespace tpcds

#endif  // TPCDS_UTIL_DECIMAL_H_
