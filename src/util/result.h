#ifndef TPCDS_UTIL_RESULT_H_
#define TPCDS_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace tpcds {

/// Value-or-error return type: holds either a T or an error Status.
///
/// Construction from T or from a (non-OK) Status is implicit so call sites
/// can `return value;` or `return Status::InvalidArgument(...)`. Access the
/// value only after checking ok(); ValueOrDie() asserts in debug builds.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, see above.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, see above.
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Error status; returns OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns the Status,
/// otherwise assigns the value to `lhs` (which must be a declaration).
#define TPCDS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define TPCDS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define TPCDS_ASSIGN_OR_RETURN_NAME(a, b) TPCDS_ASSIGN_OR_RETURN_CONCAT(a, b)
#define TPCDS_ASSIGN_OR_RETURN(lhs, rexpr) \
  TPCDS_ASSIGN_OR_RETURN_IMPL(             \
      TPCDS_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, rexpr)

}  // namespace tpcds

#endif  // TPCDS_UTIL_RESULT_H_
