#include "util/random.h"

#include <cassert>
#include <cmath>

namespace tpcds {
namespace {

// Knuth MMIX linear-congruential constants.
constexpr uint64_t kMult = 6364136223846793005ULL;
constexpr uint64_t kInc = 1442695040888963407ULL;

// Computes the LCG transition applied n times: state -> a^n*state + c_n,
// returning (a^n, c_n) mod 2^64 by square-and-multiply.
void LcgPower(uint64_t n, uint64_t* mult_out, uint64_t* inc_out) {
  uint64_t acc_mult = 1;
  uint64_t acc_inc = 0;
  uint64_t cur_mult = kMult;
  uint64_t cur_inc = kInc;
  while (n > 0) {
    if (n & 1) {
      acc_mult *= cur_mult;
      acc_inc = acc_inc * cur_mult + cur_inc;
    }
    cur_inc = (cur_mult + 1) * cur_inc;
    cur_mult *= cur_mult;
    n >>= 1;
  }
  *mult_out = acc_mult;
  *inc_out = acc_inc;
}

}  // namespace

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t RngStream::NextUint64() {
  state_ = state_ * kMult + kInc;
  ++offset_;
  return Mix64(state_);
}

double RngStream::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t RngStream::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  uint64_t draw = NextUint64();
  if (span == 0) return static_cast<int64_t>(draw);
  return lo + static_cast<int64_t>(draw % span);
}

double RngStream::Gaussian() {
  // Acklam's rational approximation to the inverse normal CDF; max relative
  // error ~1.15e-9, far below what a data generator needs.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  // Keep p strictly inside (0, 1).
  double p = NextDouble();
  if (p <= 0.0) p = 0x1.0p-53;

  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

int64_t RngStream::ZipfInt(int64_t n, double theta) {
  assert(n > 0);
  assert(theta >= 0.0 && theta < 1.0);
  double u = NextDouble();
  int64_t rank = static_cast<int64_t>(
      std::pow(u, 1.0 / (1.0 - theta)) * static_cast<double>(n));
  return rank < n ? rank : n - 1;
}

size_t RngStream::WeightedPick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = NextDouble() * total;
  double running = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    running += weights[i];
    if (target < running) return i;
  }
  return weights.size() - 1;
}

void RngStream::SeekTo(uint64_t offset) {
  uint64_t mult;
  uint64_t inc;
  LcgPower(offset, &mult, &inc);
  state_ = mult * Mix64(seed_) + inc;
  offset_ = offset;
}

uint64_t DeriveSeed(uint64_t master_seed, uint64_t table_id,
                    uint64_t column_id) {
  return Mix64(master_seed ^ Mix64(table_id * 1000003ULL + column_id));
}

}  // namespace tpcds
