#include "util/date.h"

#include <cstdio>

namespace tpcds {
namespace {

const char* const kDayNames[] = {"Monday",   "Tuesday", "Wednesday",
                                 "Thursday", "Friday",  "Saturday",
                                 "Sunday"};
const char* const kMonthNames[] = {"January",   "February", "March",
                                   "April",     "May",      "June",
                                   "July",      "August",   "September",
                                   "October",   "November", "December"};

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  // Fliegel & Van Flandern Gregorian -> JDN.
  int a = (14 - month) / 12;
  int y = year + 4800 - a;
  int m = month + 12 * a - 3;
  int32_t jdn = day + (153 * m + 2) / 5 + 365 * y + y / 4 - y / 100 +
                y / 400 - 32045;
  return Date(jdn);
}

Result<Date> Date::Parse(const std::string& text) {
  int year = 0;
  int month = 0;
  int day = 0;
  char extra = '\0';
  if (std::sscanf(text.c_str(), "%d-%d-%d%c", &year, &month, &day, &extra) !=
      3) {
    return Status::ParseError("invalid date literal: '" + text + "'");
  }
  if (!IsValidYmd(year, month, day)) {
    return Status::ParseError("invalid calendar date: '" + text + "'");
  }
  return FromYmd(year, month, day);
}

bool Date::IsValidYmd(int year, int month, int day) {
  if (year < 1 || month < 1 || month > 12 || day < 1) return false;
  return day <= DaysInMonth(year, month);
}

bool Date::IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int Date::DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

void Date::ToYmd(int* year, int* month, int* day) const {
  // Fliegel & Van Flandern JDN -> Gregorian.
  int32_t a = jdn_ + 32044;
  int32_t b = (4 * a + 3) / 146097;
  int32_t c = a - 146097 * b / 4;
  int32_t d = (4 * c + 3) / 1461;
  int32_t e = c - 1461 * d / 4;
  int32_t m = (5 * e + 2) / 153;
  *day = e - (153 * m + 2) / 5 + 1;
  *month = m + 3 - 12 * (m / 10);
  *year = 100 * b + d - 4800 + m / 10;
}

int Date::year() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return y;
}

int Date::month() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return m;
}

int Date::day() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return d;
}

int Date::DayOfWeek() const { return jdn_ % 7 + 1; }

const char* Date::DayName() const { return kDayNames[DayOfWeek() - 1]; }

const char* Date::MonthName() const { return kMonthNames[month() - 1]; }

int Date::Quarter() const { return (month() - 1) / 3 + 1; }

int Date::DayOfYear() const {
  return jdn_ - FromYmd(year(), 1, 1).jdn() + 1;
}

int Date::WeekOfYear() const { return 1 + (DayOfYear() - 1) / 7; }

Date Date::EndOfMonth() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  return FromYmd(y, m, DaysInMonth(y, m));
}

std::string Date::ToString() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace tpcds
