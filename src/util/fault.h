#ifndef TPCDS_UTIL_FAULT_H_
#define TPCDS_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tpcds {

/// One parsed fault trigger. Shared by the static per-site rules and the
/// time-phased chaos windows.
struct FaultTrigger {
  enum class Kind { kNone, kNth, kEvery, kProb };
  Kind kind = Kind::kNone;
  uint64_t n = 0;     // kNth / kEvery
  double p = 0.0;     // kProb
  uint64_t seed = 0;  // kProb; 0 = derive per site (see Configure)
  bool has_seed = false;
};

/// Parses "nth:N" / "every:N" / "prob:P[:S]" into a trigger.
Result<FaultTrigger> ParseFaultTrigger(const std::string& text);

/// A time-phased chaos schedule: fault windows that activate a site's
/// trigger only for [start_ms, start_ms + duration_ms) measured from
/// FaultInjector::StartScheduleClock(). Within a window, call indices
/// count from the window's first observed call, so the trigger's firing
/// set is a deterministic function of the spec (and, for prob, its seed)
/// — only *which wall-clock calls* land inside the window depends on
/// timing.
///
/// Spec grammar (TPCDS_CHAOS environment variable, Parse(), or
/// `full_benchmark -chaos`):
///
///   schedule := window ("," window)*
///   window   := site "@" START_MS "+" DURATION_MS "=" trigger
///
/// Example: "wal-append@50+200=nth:3,shed@0+500=every:2" — the third
/// wal-append inside [50ms, 250ms) fails, and every second shed attempt
/// in the first half second degrades to backpressure.
struct ChaosSchedule {
  struct Window {
    std::string site;
    double start_ms = 0.0;
    double duration_ms = 0.0;
    FaultTrigger trigger;
    std::string trigger_text;  // as parsed, for reporting
  };
  std::vector<Window> windows;

  static Result<ChaosSchedule> Parse(const std::string& spec);
  bool empty() const { return windows.empty(); }
  std::string ToString() const;
};

/// Deterministic fault injection for robustness testing.
///
/// Production code calls TPCDS_FAULT_POINT("site") (or
/// FaultInjector::Global().Maybe("site")) at named sites; the call is a
/// single relaxed atomic load when no faults are configured. A configured
/// rule makes the site return an error Status instead, letting tests prove
/// that every error path unwinds cleanly (no leaks under ASan, no races
/// under TSan, no broken invariants after driver-level recovery).
///
/// Spec grammar (TPCDS_FAULTS environment variable or Configure()):
///
///   spec    := rule ("," rule)*
///   rule    := site "=" trigger
///   trigger := "nth:" N            fail exactly the N-th call (1-based,
///                                  one-shot; later calls succeed)
///           |  "every:" N          fail every N-th call
///           |  "prob:" P [":" S]   fail call i iff hash(S, i) < P; the
///                                  firing set is a deterministic function
///                                  of the seed S, independent of thread
///                                  interleaving. Without an explicit S the
///                                  seed derives from the site itself, so
///                                  two prob-armed sites never fire in
///                                  lockstep and reruns of the same spec
///                                  are bit-identical.
///
/// Example: TPCDS_FAULTS="morsel=nth:40,maintenance=prob:0.5:7"
///
/// Call counters are global per site (atomic across threads); *which*
/// call index a given worker draws depends on scheduling, but the set of
/// failing indices does not.
///
/// On top of the static rules, ArmSchedule() installs time-phased
/// ChaosSchedule windows (activated by StartScheduleClock()); both layers
/// are consulted by Maybe(), static rules first.
class FaultInjector {
 public:
  /// Process-wide injector. First use seeds it from TPCDS_FAULTS (when
  /// set); tests reconfigure it with Configure()/Clear().
  static FaultInjector& Global();

  /// Replaces the active rule set. Unknown sites are an error so typos in
  /// TPCDS_FAULTS fail loudly instead of silently injecting nothing.
  Status Configure(const std::string& spec);

  /// Removes all rules, windows and the calls-so-far counters.
  void Clear();

  /// Installs a chaos schedule's windows (replacing any previous
  /// schedule; static rules are untouched). The windows stay dormant
  /// until StartScheduleClock(). Must not race Maybe() — arm before the
  /// workload starts.
  Status ArmSchedule(const ChaosSchedule& schedule);

  /// Starts (or restarts) the schedule clock: window activation times are
  /// measured from this call. Safe to call while Maybe() runs.
  void StartScheduleClock();

  /// Deactivates and removes the schedule's windows, leaving static
  /// rules armed. Must not race Maybe().
  void StopSchedule();

  /// True when at least one rule or window is active.
  bool enabled() const {
    return armed_.load(std::memory_order_acquire);
  }

  /// Returns an error iff the named site should fail this call.
  Status Maybe(const char* site);

  /// Total calls observed at a site since the last Configure/Clear
  /// (0 while disabled — counting only happens when rules are armed).
  /// Includes calls counted inside active chaos windows.
  int64_t CallsAt(const std::string& site);

  /// Total faults fired at a site (static rule + chaos windows) since the
  /// last Configure/Clear/ArmSchedule.
  int64_t FiredAt(const std::string& site);

  /// Per-window calls/fired counts of the armed schedule, for drill
  /// reports ("site@start+dur=trigger: N calls, M fired" per line).
  std::string ScheduleReport();

  /// The catalog of valid site names.
  static const std::vector<std::string>& Sites();

 private:
  FaultInjector();

  struct Rule {
    FaultTrigger trigger;
    std::atomic<int64_t> calls{0};
    std::atomic<int64_t> fired{0};
  };

  struct ArmedWindow {
    int site_idx = -1;
    double start_ms = 0.0;
    double end_ms = 0.0;
    FaultTrigger trigger;
    std::string label;  // "site@start+dur=trigger" for reports
    std::atomic<int64_t> calls{0};
    std::atomic<int64_t> fired{0};
  };

  Rule* FindRule(const char* site);
  /// Applies a trigger to 1-based call index `call`; true = fire. Prob
  /// seeds are resolved at arm time, so the trigger is self-contained.
  static bool TriggerFires(const FaultTrigger& trigger, int64_t call);
  /// Milliseconds since StartScheduleClock(), negative when not started.
  double ScheduleElapsedMs() const;
  void RecomputeArmedLocked();

  std::atomic<bool> armed_{false};
  std::mutex mu_;  // guards reconfiguration; Maybe reads lock-free
  // One slot per catalog site, index-aligned with Sites().
  std::vector<Rule> rules_;
  bool rules_armed_ = false;  // under mu_
  // Armed chaos windows; immutable between ArmSchedule/StopSchedule.
  std::vector<std::unique_ptr<ArmedWindow>> windows_;
  std::atomic<bool> schedule_armed_{false};
  std::atomic<int64_t> schedule_t0_ns_{-1};
};

/// Convenience: returns the injected error Status out of the enclosing
/// function when the site fires. Compiles to one relaxed load when the
/// injector is disarmed.
#define TPCDS_FAULT_POINT(site)                                       \
  do {                                                                \
    if (::tpcds::FaultInjector::Global().enabled()) {                 \
      ::tpcds::Status _fault_st =                                     \
          ::tpcds::FaultInjector::Global().Maybe(site);               \
      if (!_fault_st.ok()) return _fault_st;                          \
    }                                                                 \
  } while (false)

}  // namespace tpcds

#endif  // TPCDS_UTIL_FAULT_H_
