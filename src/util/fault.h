#ifndef TPCDS_UTIL_FAULT_H_
#define TPCDS_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace tpcds {

/// Deterministic fault injection for robustness testing.
///
/// Production code calls TPCDS_FAULT_POINT("site") (or
/// FaultInjector::Global().Maybe("site")) at named sites; the call is a
/// single relaxed atomic load when no faults are configured. A configured
/// rule makes the site return an error Status instead, letting tests prove
/// that every error path unwinds cleanly (no leaks under ASan, no races
/// under TSan, no broken invariants after driver-level recovery).
///
/// Spec grammar (TPCDS_FAULTS environment variable or Configure()):
///
///   spec    := rule ("," rule)*
///   rule    := site "=" trigger
///   trigger := "nth:" N            fail exactly the N-th call (1-based,
///                                  one-shot; later calls succeed)
///           |  "every:" N          fail every N-th call
///           |  "prob:" P [":" S]   fail call i iff hash(S, i) < P; the
///                                  firing set is a deterministic function
///                                  of the seed S (default 1), independent
///                                  of thread interleaving
///
/// Example: TPCDS_FAULTS="morsel=nth:40,maintenance=prob:0.5:7"
///
/// Call counters are global per site (atomic across threads); *which*
/// call index a given worker draws depends on scheduling, but the set of
/// failing indices does not.
class FaultInjector {
 public:
  /// Process-wide injector. First use seeds it from TPCDS_FAULTS (when
  /// set); tests reconfigure it with Configure()/Clear().
  static FaultInjector& Global();

  /// Replaces the active rule set. Unknown sites are an error so typos in
  /// TPCDS_FAULTS fail loudly instead of silently injecting nothing.
  Status Configure(const std::string& spec);

  /// Removes all rules (and the calls-so-far counters).
  void Clear();

  /// True when at least one rule is active.
  bool enabled() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Returns an error iff the named site should fail this call.
  Status Maybe(const char* site);

  /// Total calls observed at a site since the last Configure/Clear
  /// (0 while disabled — counting only happens when rules are armed).
  int64_t CallsAt(const std::string& site);

  /// The catalog of valid site names.
  static const std::vector<std::string>& Sites();

 private:
  FaultInjector();

  struct Rule {
    enum class Kind { kNone, kNth, kEvery, kProb };
    Kind kind = Kind::kNone;
    uint64_t n = 0;     // kNth / kEvery
    double p = 0.0;     // kProb
    uint64_t seed = 1;  // kProb
    std::atomic<int64_t> calls{0};
  };

  Rule* FindRule(const char* site);

  std::atomic<bool> armed_{false};
  std::mutex mu_;  // guards reconfiguration; Maybe reads lock-free
  // One slot per catalog site, index-aligned with Sites().
  std::vector<Rule> rules_;
};

/// Convenience: returns the injected error Status out of the enclosing
/// function when the site fires. Compiles to one relaxed load when the
/// injector is disarmed.
#define TPCDS_FAULT_POINT(site)                                       \
  do {                                                                \
    if (::tpcds::FaultInjector::Global().enabled()) {                 \
      ::tpcds::Status _fault_st =                                     \
          ::tpcds::FaultInjector::Global().Maybe(site);               \
      if (!_fault_st.ok()) return _fault_st;                          \
    }                                                                 \
  } while (false)

}  // namespace tpcds

#endif  // TPCDS_UTIL_FAULT_H_
