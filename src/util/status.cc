#include "util/status.h"

namespace tpcds {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace tpcds
