#include "util/flatfile.h"

#include "util/fault.h"
#include "util/string_util.h"

namespace tpcds {

FlatFileWriter::~FlatFileWriter() {
  if (out_.is_open()) out_.close();
}

Status FlatFileWriter::Open(const std::string& path) {
  path_ = path;
  failed_ = Status::OK();
  out_.open(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out_) return Status::IoError("cannot open '" + path + "' for writing");
  return Status::OK();
}

Status FlatFileWriter::Append(const std::vector<std::string>& fields) {
  // A short write (ENOSPC, quota, yanked disk) latches the writer into a
  // failed state: later appends and Close keep surfacing the error rather
  // than silently producing a truncated table file.
  TPCDS_RETURN_NOT_OK(failed_);
  if (FaultInjector::Global().enabled()) {
    Status fault = FaultInjector::Global().Maybe("io-write");
    if (!fault.ok()) {
      failed_ = Status::IoError("write failed on '" + path_ + "': " +
                                fault.message());
      return failed_;
    }
  }
  std::string line;
  size_t needed = 1;
  for (const std::string& f : fields) needed += f.size() + 1;
  line.reserve(needed);
  for (const std::string& f : fields) {
    line += f;
    line += '|';
  }
  line += '\n';
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  if (!out_) {
    failed_ = Status::IoError("write failed on '" + path_ + "'");
    return failed_;
  }
  bytes_written_ += line.size();
  ++rows_written_;
  return Status::OK();
}

Status FlatFileWriter::Close() {
  if (out_.is_open()) {
    if (FaultInjector::Global().enabled()) {
      Status fault = FaultInjector::Global().Maybe("io-close");
      if (!fault.ok()) {
        out_.close();
        failed_ = Status::IoError("close failed on '" + path_ + "': " +
                                  fault.message());
        return failed_;
      }
    }
    out_.close();
    if (!out_) {
      failed_ = Status::IoError("close failed on '" + path_ + "'");
      return failed_;
    }
  }
  return failed_;
}

Status FlatFileReader::Open(const std::string& path) {
  in_.open(path, std::ios::in | std::ios::binary);
  if (!in_) return Status::IoError("cannot open '" + path + "' for reading");
  return Status::OK();
}

bool FlatFileReader::Next(std::vector<std::string>* fields) {
  std::string line;
  if (!std::getline(in_, line)) return false;
  // Records end in "...|", so splitting yields one empty trailing field.
  *fields = Split(line, '|');
  if (!fields->empty() && fields->back().empty()) fields->pop_back();
  return true;
}

}  // namespace tpcds
