#include "util/wal.h"

#include <array>
#include <cstring>

#include "util/fault.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

constexpr char kWalMagic[8] = {'T', 'P', 'C', 'D', 'S', 'W', 'A', 'L'};
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kWalMagic) + sizeof(uint32_t);
// u32 payload_len + u32 crc + u8 type + u64 lsn.
constexpr size_t kFrameBytes = 4 + 4 + 1 + 8;
// Framing sanity bound: no logical maintenance record comes near this.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256>* table = [] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      (*t)[i] = c;
    }
    return t;
  }();
  return *table;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = CrcTable()[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

WalWriter::~WalWriter() {
  if (out_.is_open()) out_.close();
}

Status WalWriter::Open(const std::string& path) {
  path_ = path;
  out_.open(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out_) return Status::IoError("cannot open WAL '" + path + "'");
  std::string header(kWalMagic, sizeof(kWalMagic));
  PutU32(&header, kWalVersion);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_) return Status::IoError("cannot write WAL header to '" + path + "'");
  next_lsn_ = 1;
  records_ = 0;
  failed_ = false;
  return Status::OK();
}

Result<uint64_t> WalWriter::AppendAt(const char* site, WalRecordType type,
                                     const std::string& payload) {
  if (!out_.is_open()) return Status::Internal("WAL is not open");
  if (failed_) {
    return Status::IoError("WAL '" + path_ + "' failed earlier; no further "
                           "appends accepted");
  }
  uint64_t lsn = next_lsn_;
  std::string body;  // the crc-covered portion: type, lsn, payload
  body.reserve(9 + payload.size());
  body.push_back(static_cast<char>(type));
  PutU64(&body, lsn);
  body += payload;

  std::string framed;
  framed.reserve(8 + body.size());
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  PutU32(&framed, Crc32(body.data(), body.size()));
  framed += body;

  if (FaultInjector::Global().enabled()) {
    Status fault = FaultInjector::Global().Maybe(site);
    if (!fault.ok()) {
      if (torn_writes_ && framed.size() > 1) {
        // A torn write: half the record reaches the disk before the
        // "crash". Recovery must truncate this tail.
        out_.write(framed.data(),
                   static_cast<std::streamsize>(framed.size() / 2));
        out_.flush();
      }
      failed_ = true;
      return fault;
    }
  }

  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  if (!out_) {
    failed_ = true;
    return Status::IoError("WAL append failed on '" + path_ + "'");
  }
  ++next_lsn_;
  ++records_;
  return lsn;
}

Result<uint64_t> WalWriter::Append(WalRecordType type,
                                   const std::string& payload) {
  return AppendAt("wal-append", type, payload);
}

Result<uint64_t> WalWriter::AppendCommit(const std::string& payload) {
  TPCDS_ASSIGN_OR_RETURN(
      uint64_t lsn, AppendAt("wal-commit", WalRecordType::kOpCommit, payload));
  TPCDS_RETURN_NOT_OK(Sync());
  return lsn;
}

Status WalWriter::Sync() {
  if (!out_.is_open()) return Status::OK();
  out_.flush();
  if (!out_) {
    failed_ = true;
    return Status::IoError("WAL flush failed on '" + path_ + "'");
  }
  return Status::OK();
}

Status WalWriter::Close() {
  if (!out_.is_open()) return Status::OK();
  out_.flush();
  out_.close();
  if (!out_) return Status::IoError("WAL close failed on '" + path_ + "'");
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return Status::IoError("cannot open WAL '" + path + "'");
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());

  WalReadResult result;
  if (buf.size() < kHeaderBytes) {
    // The crash beat even the header write; an empty log, all torn.
    result.torn_bytes = buf.size();
    result.truncated_tail = !buf.empty();
    return result;
  }
  if (std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::DataLoss("WAL '" + path + "' has a bad magic number");
  }
  uint32_t version = GetU32(buf.data() + sizeof(kWalMagic));
  if (version != kWalVersion) {
    return Status::DataLoss(StringPrintf(
        "WAL '%s' has unsupported version %u", path.c_str(), version));
  }

  size_t pos = kHeaderBytes;
  uint64_t prev_lsn = 0;
  while (pos < buf.size()) {
    size_t remaining = buf.size() - pos;
    bool torn = false;
    if (remaining < kFrameBytes) {
      torn = true;
    } else {
      uint32_t payload_len = GetU32(buf.data() + pos);
      if (payload_len > kMaxPayloadBytes ||
          remaining < kFrameBytes + payload_len) {
        // The length field claims more bytes than exist — either a torn
        // frame or corruption of the length itself; both end the log here.
        torn = true;
      } else {
        uint32_t want_crc = GetU32(buf.data() + pos + 4);
        const char* body = buf.data() + pos + 8;
        size_t body_len = 9 + payload_len;
        uint32_t got_crc = Crc32(body, body_len);
        size_t record_end = pos + kFrameBytes + payload_len;
        if (want_crc != got_crc) {
          if (record_end == buf.size()) {
            torn = true;  // garbage in the final record: a torn write
          } else {
            return Status::DataLoss(StringPrintf(
                "WAL '%s': CRC mismatch at offset %zu (not at tail) — "
                "committed state is corrupt", path.c_str(), pos));
          }
        } else {
          WalRecord record;
          record.type = static_cast<WalRecordType>(
              static_cast<uint8_t>(body[0]));
          record.lsn = GetU64(body + 1);
          record.payload.assign(body + 9, payload_len);
          if (record.lsn <= prev_lsn) {
            return Status::DataLoss(StringPrintf(
                "WAL '%s': non-monotonic LSN %llu after %llu at offset %zu",
                path.c_str(), static_cast<unsigned long long>(record.lsn),
                static_cast<unsigned long long>(prev_lsn), pos));
          }
          prev_lsn = record.lsn;
          result.records.push_back(std::move(record));
          pos = record_end;
          continue;
        }
      }
    }
    if (torn) {
      result.torn_bytes = buf.size() - pos;
      result.truncated_tail = true;
      break;
    }
  }
  return result;
}

}  // namespace tpcds
