#ifndef TPCDS_UTIL_STRING_UTIL_H_
#define TPCDS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tpcds {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII upper/lower-casing (SQL identifiers and keywords are ASCII).
std::string ToUpper(std::string_view text);
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a count with thousands separators ("12,345,678").
std::string FormatWithCommas(int64_t value);

}  // namespace tpcds

#endif  // TPCDS_UTIL_STRING_UTIL_H_
