#include "util/fault.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/random.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// Catalog of fault sites. Keep in sync with the call sites listed in
/// docs/ROBUSTNESS.md:
///   alloc          governor memory reservation (RowSet / join / agg builds)
///   op-open        physical-plan operator open (executor Dispatch)
///   morsel         per-morsel work unit (executor ForEachMorsel)
///   maintenance    one data-maintenance operation apply
///   wal-append     WAL record append (WalWriter::Append)
///   wal-commit     WAL commit-marker append (WalWriter::AppendCommit)
///   ckpt-write     checkpoint table-file write (Database::SaveCheckpoint)
///   ckpt-manifest  checkpoint manifest write (Database::SaveCheckpoint)
///   io-write       flat-file row write (FlatFileWriter::Append)
///   io-close       flat-file close (FlatFileWriter::Close)
///   admit          query-service admission (QueryService::Submit)
///   shed           query-service overload shedding (victim selection)
const std::vector<std::string>& SiteCatalog() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "alloc",      "op-open",    "morsel",        "maintenance",
      "wal-append", "wal-commit", "ckpt-write",    "ckpt-manifest",
      "io-write",   "io-close",   "admit",         "shed"};
  return *sites;
}

int SiteIndex(const char* site) {
  const std::vector<std::string>& sites = SiteCatalog();
  for (size_t i = 0; i < sites.size(); ++i) {
    if (sites[i] == site) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

FaultInjector::FaultInjector() : rules_(SiteCatalog().size()) {
  const char* env = std::getenv("TPCDS_FAULTS");
  if (env != nullptr && *env != '\0') {
    Status st = Configure(env);
    if (!st.ok()) {
      std::fprintf(stderr, "TPCDS_FAULTS ignored: %s\n",
                   st.ToString().c_str());
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

const std::vector<std::string>& FaultInjector::Sites() {
  return SiteCatalog();
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  for (Rule& rule : rules_) {
    rule.kind = Rule::Kind::kNone;
    rule.n = 0;
    rule.p = 0.0;
    rule.seed = 1;
    rule.calls.store(0, std::memory_order_relaxed);
  }
}

Status FaultInjector::Configure(const std::string& spec) {
  Clear();
  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  for (const std::string& part : Split(spec, ',')) {
    std::string rule_text(Trim(part));
    if (rule_text.empty()) continue;
    size_t eq = rule_text.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault rule missing '=': " + rule_text);
    }
    std::string site(Trim(rule_text.substr(0, eq)));
    std::string trigger(Trim(rule_text.substr(eq + 1)));
    int idx = SiteIndex(site.c_str());
    if (idx < 0) {
      std::string known;
      for (const std::string& s : SiteCatalog()) {
        if (!known.empty()) known += ", ";
        known += s;
      }
      return Status::InvalidArgument("unknown fault site '" + site +
                                     "' (known: " + known + ")");
    }
    Rule& rule = rules_[static_cast<size_t>(idx)];
    if (StartsWith(trigger, "nth:") || StartsWith(trigger, "every:")) {
      bool one_shot = StartsWith(trigger, "nth:");
      std::string num(trigger.substr(one_shot ? 4 : 6));
      char* end = nullptr;
      long long n = std::strtoll(num.c_str(), &end, 10);
      if (end == num.c_str() || *end != '\0' || n <= 0) {
        return Status::InvalidArgument("bad fault count in: " + rule_text);
      }
      rule.kind = one_shot ? Rule::Kind::kNth : Rule::Kind::kEvery;
      rule.n = static_cast<uint64_t>(n);
    } else if (StartsWith(trigger, "prob:")) {
      std::vector<std::string> fields = Split(trigger.substr(5), ':');
      if (fields.empty() || fields.size() > 2) {
        return Status::InvalidArgument("bad prob trigger in: " + rule_text);
      }
      char* end = nullptr;
      double p = std::strtod(fields[0].c_str(), &end);
      if (end == fields[0].c_str() || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("bad probability in: " + rule_text);
      }
      rule.kind = Rule::Kind::kProb;
      rule.p = p;
      if (fields.size() == 2) {
        rule.seed = static_cast<uint64_t>(
            std::strtoull(fields[1].c_str(), nullptr, 10));
      }
    } else {
      return Status::InvalidArgument(
          "unknown fault trigger (want nth:/every:/prob:): " + rule_text);
    }
    any = true;
  }
  armed_.store(any, std::memory_order_relaxed);
  return Status::OK();
}

FaultInjector::Rule* FaultInjector::FindRule(const char* site) {
  int idx = SiteIndex(site);
  return idx < 0 ? nullptr : &rules_[static_cast<size_t>(idx)];
}

Status FaultInjector::Maybe(const char* site) {
  if (!enabled()) return Status::OK();
  Rule* rule = FindRule(site);
  if (rule == nullptr) {
    return Status::Internal(std::string("unregistered fault site: ") + site);
  }
  // 1-based call index; counted even for rule-less sites so sweeps can
  // assert a site was actually exercised.
  int64_t call = rule->calls.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (rule->kind) {
    case Rule::Kind::kNone:
      return Status::OK();
    case Rule::Kind::kNth:
      fire = static_cast<uint64_t>(call) == rule->n;
      break;
    case Rule::Kind::kEvery:
      fire = static_cast<uint64_t>(call) % rule->n == 0;
      break;
    case Rule::Kind::kProb: {
      uint64_t h = Mix64(rule->seed * 0x9E3779B97F4A7C15ULL ^
                         static_cast<uint64_t>(call));
      fire = static_cast<double>(h) <
             rule->p * 1.8446744073709552e19;  // p * 2^64
      break;
    }
  }
  if (!fire) return Status::OK();
  return Status::Cancelled(StringPrintf(
      "injected fault at site '%s' (call #%lld)", site,
      static_cast<long long>(call)));
}

int64_t FaultInjector::CallsAt(const std::string& site) {
  Rule* rule = FindRule(site.c_str());
  return rule == nullptr ? 0 : rule->calls.load(std::memory_order_relaxed);
}

}  // namespace tpcds
