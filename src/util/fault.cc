#include "util/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/random.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

/// Catalog of fault sites. Keep in sync with the call sites listed in
/// docs/ROBUSTNESS.md:
///   alloc          governor memory reservation (RowSet / join / agg builds)
///   op-open        physical-plan operator open (executor Dispatch)
///   morsel         per-morsel work unit (executor ForEachMorsel)
///   maintenance    one data-maintenance operation apply
///   wal-append     WAL record append (WalWriter::Append)
///   wal-commit     WAL commit-marker append (WalWriter::AppendCommit)
///   ckpt-write     checkpoint table-file write (Database::SaveCheckpoint)
///   ckpt-manifest  checkpoint manifest write (Database::SaveCheckpoint)
///   io-write       flat-file row write (FlatFileWriter::Append)
///   io-close       flat-file close (FlatFileWriter::Close)
///   admit          query-service admission (QueryService::Submit)
///   shed           query-service overload shedding (victim selection)
const std::vector<std::string>& SiteCatalog() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "alloc",      "op-open",    "morsel",        "maintenance",
      "wal-append", "wal-commit", "ckpt-write",    "ckpt-manifest",
      "io-write",   "io-close",   "admit",         "shed"};
  return *sites;
}

int SiteIndex(const char* site) {
  const std::vector<std::string>& sites = SiteCatalog();
  for (size_t i = 0; i < sites.size(); ++i) {
    if (sites[i] == site) return static_cast<int>(i);
  }
  return -1;
}

std::string KnownSites() {
  std::string known;
  for (const std::string& s : SiteCatalog()) {
    if (!known.empty()) known += ", ";
    known += s;
  }
  return known;
}

/// Default prob seed for a site (or a window on it): derived from the
/// site index so bare "prob:P" rules on different sites never fire in
/// lockstep, yet reruns of the same spec are bit-identical. `salt`
/// decorrelates chaos windows from the static rule on the same site
/// (and from each other).
uint64_t DefaultProbSeed(int site_idx, uint64_t salt) {
  return Mix64(static_cast<uint64_t>(site_idx + 1) * 1000003ULL + salt);
}

Status ParseMs(const std::string& text, const std::string& context,
               double* out) {
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0.0) {
    return Status::InvalidArgument("bad millisecond value in: " + context);
  }
  *out = v;
  return Status::OK();
}

}  // namespace

Result<FaultTrigger> ParseFaultTrigger(const std::string& text) {
  FaultTrigger trigger;
  if (StartsWith(text, "nth:") || StartsWith(text, "every:")) {
    bool one_shot = StartsWith(text, "nth:");
    std::string num(text.substr(one_shot ? 4 : 6));
    char* end = nullptr;
    long long n = std::strtoll(num.c_str(), &end, 10);
    if (end == num.c_str() || *end != '\0' || n <= 0) {
      return Status::InvalidArgument("bad fault count in: " + text);
    }
    trigger.kind =
        one_shot ? FaultTrigger::Kind::kNth : FaultTrigger::Kind::kEvery;
    trigger.n = static_cast<uint64_t>(n);
    return trigger;
  }
  if (StartsWith(text, "prob:")) {
    std::vector<std::string> fields = Split(text.substr(5), ':');
    if (fields.empty() || fields.size() > 2) {
      return Status::InvalidArgument("bad prob trigger in: " + text);
    }
    char* end = nullptr;
    double p = std::strtod(fields[0].c_str(), &end);
    if (end == fields[0].c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability in: " + text);
    }
    trigger.kind = FaultTrigger::Kind::kProb;
    trigger.p = p;
    if (fields.size() == 2) {
      char* seed_end = nullptr;
      trigger.seed = static_cast<uint64_t>(
          std::strtoull(fields[1].c_str(), &seed_end, 10));
      if (seed_end == fields[1].c_str() || *seed_end != '\0') {
        return Status::InvalidArgument("bad prob seed in: " + text);
      }
      trigger.has_seed = true;
    }
    return trigger;
  }
  return Status::InvalidArgument(
      "unknown fault trigger (want nth:/every:/prob:): " + text);
}

Result<ChaosSchedule> ChaosSchedule::Parse(const std::string& spec) {
  ChaosSchedule schedule;
  for (const std::string& part : Split(spec, ',')) {
    std::string window_text(Trim(part));
    if (window_text.empty()) continue;
    size_t at = window_text.find('@');
    size_t eq = window_text.find('=');
    if (at == std::string::npos || eq == std::string::npos || eq < at) {
      return Status::InvalidArgument(
          "chaos window must look like site@START_MS+DURATION_MS=trigger: " +
          window_text);
    }
    Window window;
    window.site = Trim(window_text.substr(0, at));
    if (SiteIndex(window.site.c_str()) < 0) {
      return Status::InvalidArgument("unknown fault site '" + window.site +
                                     "' (known: " + KnownSites() + ")");
    }
    std::string phase(Trim(window_text.substr(at + 1, eq - at - 1)));
    size_t plus = phase.find('+');
    if (plus == std::string::npos) {
      return Status::InvalidArgument(
          "chaos window phase must be START_MS+DURATION_MS: " + window_text);
    }
    Status st = ParseMs(std::string(Trim(phase.substr(0, plus))), window_text,
                        &window.start_ms);
    if (!st.ok()) return st;
    st = ParseMs(std::string(Trim(phase.substr(plus + 1))), window_text,
                 &window.duration_ms);
    if (!st.ok()) return st;
    if (window.duration_ms <= 0.0) {
      return Status::InvalidArgument("chaos window duration must be > 0: " +
                                     window_text);
    }
    window.trigger_text = Trim(window_text.substr(eq + 1));
    Result<FaultTrigger> trigger = ParseFaultTrigger(window.trigger_text);
    if (!trigger.ok()) return trigger.status();
    window.trigger = *trigger;
    schedule.windows.push_back(std::move(window));
  }
  return schedule;
}

std::string ChaosSchedule::ToString() const {
  std::string out;
  for (const Window& w : windows) {
    if (!out.empty()) out += ",";
    out += StringPrintf("%s@%g+%g=%s", w.site.c_str(), w.start_ms,
                        w.duration_ms, w.trigger_text.c_str());
  }
  return out;
}

FaultInjector::FaultInjector() : rules_(SiteCatalog().size()) {
  const char* env = std::getenv("TPCDS_FAULTS");
  if (env != nullptr && *env != '\0') {
    Status st = Configure(env);
    if (!st.ok()) {
      std::fprintf(stderr, "TPCDS_FAULTS ignored: %s\n",
                   st.ToString().c_str());
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

const std::vector<std::string>& FaultInjector::Sites() {
  return SiteCatalog();
}

void FaultInjector::RecomputeArmedLocked() {
  armed_.store(rules_armed_ || schedule_armed_.load(std::memory_order_relaxed),
               std::memory_order_release);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  rules_armed_ = false;
  schedule_armed_.store(false, std::memory_order_relaxed);
  schedule_t0_ns_.store(-1, std::memory_order_relaxed);
  windows_.clear();
  for (Rule& rule : rules_) {
    rule.trigger = FaultTrigger();
    rule.calls.store(0, std::memory_order_relaxed);
    rule.fired.store(0, std::memory_order_relaxed);
  }
}

Status FaultInjector::Configure(const std::string& spec) {
  Clear();
  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  for (const std::string& part : Split(spec, ',')) {
    std::string rule_text(Trim(part));
    if (rule_text.empty()) continue;
    size_t eq = rule_text.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault rule missing '=': " + rule_text);
    }
    std::string site(Trim(rule_text.substr(0, eq)));
    std::string trigger_text(Trim(rule_text.substr(eq + 1)));
    int idx = SiteIndex(site.c_str());
    if (idx < 0) {
      return Status::InvalidArgument("unknown fault site '" + site +
                                     "' (known: " + KnownSites() + ")");
    }
    Result<FaultTrigger> trigger = ParseFaultTrigger(trigger_text);
    if (!trigger.ok()) return trigger.status();
    Rule& rule = rules_[static_cast<size_t>(idx)];
    rule.trigger = *trigger;
    if (rule.trigger.kind == FaultTrigger::Kind::kProb &&
        !rule.trigger.has_seed) {
      rule.trigger.seed = DefaultProbSeed(idx, 0);
    }
    any = true;
  }
  rules_armed_ = any;
  RecomputeArmedLocked();
  return Status::OK();
}

Status FaultInjector::ArmSchedule(const ChaosSchedule& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.clear();
  schedule_armed_.store(false, std::memory_order_relaxed);
  for (size_t i = 0; i < schedule.windows.size(); ++i) {
    const ChaosSchedule::Window& spec = schedule.windows[i];
    int idx = SiteIndex(spec.site.c_str());
    if (idx < 0) {
      return Status::InvalidArgument("unknown fault site '" + spec.site +
                                     "' (known: " + KnownSites() + ")");
    }
    if (spec.duration_ms <= 0.0) {
      return Status::InvalidArgument("chaos window duration must be > 0: " +
                                     spec.site);
    }
    auto window = std::make_unique<ArmedWindow>();
    window->site_idx = idx;
    window->start_ms = spec.start_ms;
    window->end_ms = spec.start_ms + spec.duration_ms;
    window->trigger = spec.trigger;
    if (window->trigger.kind == FaultTrigger::Kind::kProb &&
        !window->trigger.has_seed) {
      // Salted by the window ordinal so two windows on one site (and the
      // site's static rule, salt 0) draw from distinct firing sets.
      window->trigger.seed = DefaultProbSeed(idx, i + 1);
    }
    window->label = StringPrintf("%s@%g+%g=%s", spec.site.c_str(),
                                 spec.start_ms, spec.duration_ms,
                                 spec.trigger_text.c_str());
    windows_.push_back(std::move(window));
  }
  schedule_armed_.store(!windows_.empty(), std::memory_order_relaxed);
  RecomputeArmedLocked();
  return Status::OK();
}

void FaultInjector::StartScheduleClock() {
  int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  schedule_t0_ns_.store(now_ns, std::memory_order_release);
}

void FaultInjector::StopSchedule() {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_armed_.store(false, std::memory_order_relaxed);
  schedule_t0_ns_.store(-1, std::memory_order_relaxed);
  windows_.clear();
  RecomputeArmedLocked();
}

double FaultInjector::ScheduleElapsedMs() const {
  int64_t t0 = schedule_t0_ns_.load(std::memory_order_acquire);
  if (t0 < 0) return -1.0;
  int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  return static_cast<double>(now_ns - t0) * 1e-6;
}

FaultInjector::Rule* FaultInjector::FindRule(const char* site) {
  int idx = SiteIndex(site);
  return idx < 0 ? nullptr : &rules_[static_cast<size_t>(idx)];
}

bool FaultInjector::TriggerFires(const FaultTrigger& trigger, int64_t call) {
  switch (trigger.kind) {
    case FaultTrigger::Kind::kNone:
      return false;
    case FaultTrigger::Kind::kNth:
      return static_cast<uint64_t>(call) == trigger.n;
    case FaultTrigger::Kind::kEvery:
      return static_cast<uint64_t>(call) % trigger.n == 0;
    case FaultTrigger::Kind::kProb: {
      uint64_t h = Mix64(trigger.seed * 0x9E3779B97F4A7C15ULL ^
                         static_cast<uint64_t>(call));
      return static_cast<double>(h) <
             trigger.p * 1.8446744073709552e19;  // p * 2^64
    }
  }
  return false;
}

Status FaultInjector::Maybe(const char* site) {
  if (!enabled()) return Status::OK();
  int idx = SiteIndex(site);
  if (idx < 0) {
    return Status::Internal(std::string("unregistered fault site: ") + site);
  }
  Rule& rule = rules_[static_cast<size_t>(idx)];
  // 1-based call index; counted even for rule-less sites so sweeps can
  // assert a site was actually exercised.
  int64_t call = rule.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  if (TriggerFires(rule.trigger, call)) {
    rule.fired.fetch_add(1, std::memory_order_relaxed);
    return Status::Cancelled(StringPrintf(
        "injected fault at site '%s' (call #%lld)", site,
        static_cast<long long>(call)));
  }
  if (schedule_armed_.load(std::memory_order_acquire)) {
    double elapsed_ms = ScheduleElapsedMs();
    if (elapsed_ms >= 0.0) {
      for (const std::unique_ptr<ArmedWindow>& window : windows_) {
        if (window->site_idx != idx) continue;
        if (elapsed_ms < window->start_ms || elapsed_ms >= window->end_ms) {
          continue;
        }
        // Window-local 1-based call index, counted from the first call
        // observed inside the window — the firing set is a deterministic
        // function of the trigger, independent of wall-clock phase.
        int64_t wcall =
            window->calls.fetch_add(1, std::memory_order_relaxed) + 1;
        if (TriggerFires(window->trigger, wcall)) {
          window->fired.fetch_add(1, std::memory_order_relaxed);
          return Status::Cancelled(StringPrintf(
              "injected chaos fault at site '%s' (window %s, call #%lld)",
              site, window->label.c_str(), static_cast<long long>(wcall)));
        }
      }
    }
  }
  return Status::OK();
}

int64_t FaultInjector::CallsAt(const std::string& site) {
  Rule* rule = FindRule(site.c_str());
  return rule == nullptr ? 0 : rule->calls.load(std::memory_order_relaxed);
}

int64_t FaultInjector::FiredAt(const std::string& site) {
  int idx = SiteIndex(site.c_str());
  if (idx < 0) return 0;
  int64_t fired =
      rules_[static_cast<size_t>(idx)].fired.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ArmedWindow>& window : windows_) {
    if (window->site_idx == idx) {
      fired += window->fired.load(std::memory_order_relaxed);
    }
  }
  return fired;
}

std::string FaultInjector::ScheduleReport() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::unique_ptr<ArmedWindow>& window : windows_) {
    out += StringPrintf(
        "%s: %lld calls, %lld fired\n", window->label.c_str(),
        static_cast<long long>(window->calls.load(std::memory_order_relaxed)),
        static_cast<long long>(window->fired.load(std::memory_order_relaxed)));
  }
  return out;
}

}  // namespace tpcds
