#ifndef TPCDS_UTIL_DATE_H_
#define TPCDS_UTIL_DATE_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace tpcds {

/// A calendar date stored as a Julian day number (JDN), the representation
/// the TPC-DS date_dim dimension is built on. Arithmetic (adding days,
/// differences) is plain integer math on the JDN.
class Date {
 public:
  /// Constructs the epoch-less "invalid" date (JDN 0).
  Date() : jdn_(0) {}
  /// Constructs a date directly from a Julian day number.
  explicit Date(int32_t jdn) : jdn_(jdn) {}

  /// Builds a date from a Gregorian calendar triple. Out-of-range month/day
  /// values are *not* checked; use IsValidYmd for validation.
  static Date FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD".
  static Result<Date> Parse(const std::string& text);

  /// True if the triple denotes a real Gregorian calendar date.
  static bool IsValidYmd(int year, int month, int day);

  static bool IsLeapYear(int year);

  /// Days in the given month of the given year (28..31).
  static int DaysInMonth(int year, int month);

  int32_t jdn() const { return jdn_; }
  int year() const;
  int month() const;
  int day() const;

  /// ISO day of week: 1 = Monday ... 7 = Sunday.
  int DayOfWeek() const;
  /// "Monday" ... "Sunday".
  const char* DayName() const;
  /// "January" ... "December".
  const char* MonthName() const;
  /// Calendar quarter, 1..4.
  int Quarter() const;
  /// 1-based day within the year.
  int DayOfYear() const;
  /// Simple week number: 1 + (DayOfYear()-1)/7, i.e. weeks 1..53 counted
  /// from January 1st. This is the convention the data generator's weekly
  /// sales distributions use.
  int WeekOfYear() const;
  /// Last day of this date's month.
  Date EndOfMonth() const;

  Date AddDays(int days) const { return Date(jdn_ + days); }

  /// "YYYY-MM-DD".
  std::string ToString() const;

  friend bool operator==(const Date& a, const Date& b) {
    return a.jdn_ == b.jdn_;
  }
  friend auto operator<=>(const Date& a, const Date& b) {
    return a.jdn_ <=> b.jdn_;
  }
  /// Whole days from b to a.
  friend int32_t operator-(const Date& a, const Date& b) {
    return a.jdn_ - b.jdn_;
  }

 private:
  void ToYmd(int* year, int* month, int* day) const;

  int32_t jdn_;
};

}  // namespace tpcds

#endif  // TPCDS_UTIL_DATE_H_
