#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tpcds {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("mmap: cannot open " + path);
    }
    return Status::IoError("mmap: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IoError("mmap: fstat " + path + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  size_t size = static_cast<size_t>(st.st_size);
  const char* data = nullptr;
  if (size > 0) {
    // MAP_PRIVATE read-only: the engine never writes through the map, and
    // a private mapping keeps the checkpoint file untouchable even if a
    // bug ever flipped page protections.
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      Status status = Status::IoError("mmap: map " + path + ": " +
                                      std::strerror(errno));
      ::close(fd);
      return status;
    }
    data = static_cast<const char*>(mapped);
  }
  // The mapping survives the descriptor; the fd is only needed for setup.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(path, data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

}  // namespace tpcds
