#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace tpcds {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace tpcds
