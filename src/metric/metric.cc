#include "metric/metric.h"

#include "util/string_util.h"

namespace tpcds {

double QphDs(const MetricInputs& in) {
  double denominator = in.t_qr1_sec + in.t_dm_sec + in.t_qr2_sec +
                       0.01 * in.streams * in.t_load_sec;
  if (denominator <= 0.0 || in.streams <= 0 || in.scale_factor <= 0.0) {
    return 0.0;
  }
  double total_queries = 2.0 * kQueriesPerRun * in.streams;  // 198 * S
  return in.scale_factor * 3600.0 * total_queries / denominator;
}

std::string FailureReport::ToString() const {
  if (empty()) return "no failures, no retries\n";
  std::string out = StringPrintf(
      "%zu failed work item(s), %lld retr%s total\n", failures.size(),
      static_cast<long long>(total_retries),
      total_retries == 1 ? "y" : "ies");
  for (const QueryFailure& f : failures) {
    if (f.phase == "dm") {
      out += StringPrintf("  [dm] after %d attempt(s): %s\n", f.attempts,
                          f.error.c_str());
    } else {
      out += StringPrintf("  [%s] query%02d stream %d after %d attempt(s): %s\n",
                          f.phase.c_str(), f.template_id, f.stream,
                          f.attempts, f.error.c_str());
    }
  }
  return out;
}

double PricePerformance(double tco_dollars, double qphds) {
  if (qphds <= 0.0) return 0.0;
  return tco_dollars / qphds;
}

std::string FormatMetricReport(const MetricInputs& in, double tco_dollars) {
  double qphds = QphDs(in);
  std::string out;
  out += StringPrintf("scale factor (SF)         %10.3f\n", in.scale_factor);
  out += StringPrintf("streams (S)               %10d\n", in.streams);
  out += StringPrintf("queries executed (198*S)  %10d\n",
                      2 * kQueriesPerRun * in.streams);
  out += StringPrintf("T_Load                    %10.3f s\n", in.t_load_sec);
  out += StringPrintf("T_QR1                     %10.3f s\n", in.t_qr1_sec);
  out += StringPrintf("T_DM                      %10.3f s\n", in.t_dm_sec);
  out += StringPrintf("T_QR2                     %10.3f s\n", in.t_qr2_sec);
  out += StringPrintf("load charge 0.01*S*T_Load %10.3f s\n",
                      0.01 * in.streams * in.t_load_sec);
  out += StringPrintf("QphDS@SF                  %10.1f\n", qphds);
  if (in.recovery_phases > 0) {
    out += StringPrintf("T_Checkpoint              %10.3f s  (not in metric)\n",
                        in.t_checkpoint_sec);
    out += StringPrintf("T_Recovery                %10.3f s  (not in metric)\n",
                        in.t_recovery_sec);
    out += StringPrintf("recovered state           %10s\n",
                        in.recovery_verified ? "byte-identical" : "MISMATCH");
  }
  if (in.attached) {
    out += StringPrintf("T_Attach (mmap)           %10.3f s  (not in metric)\n",
                        in.t_attach_sec);
  }
  if (in.generation_swaps > 0) {
    out += StringPrintf("generation swaps          %10d\n",
                        in.generation_swaps);
    out += StringPrintf("final generation          %10llu\n",
                        static_cast<unsigned long long>(in.final_generation));
  }
  if (in.failed_queries > 0) {
    out += StringPrintf(
        "failed work items         %10d  (run NOT metric-valid)\n",
        in.failed_queries);
  }
  if (tco_dollars > 0.0) {
    out += StringPrintf("3yr TCO                   %10.2f $\n", tco_dollars);
    out += StringPrintf("$/QphDS@SF                %10.4f\n",
                        PricePerformance(tco_dollars, qphds));
  }
  return out;
}

}  // namespace tpcds
