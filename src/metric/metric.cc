#include "metric/metric.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace tpcds {

LatencySummary SummarizeLatenciesMs(std::vector<double> latencies_ms) {
  LatencySummary summary;
  if (latencies_ms.empty()) return summary;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  summary.count = static_cast<int64_t>(latencies_ms.size());
  auto nearest_rank = [&](double p) {
    size_t rank = static_cast<size_t>(
        std::ceil(p * static_cast<double>(latencies_ms.size())));
    if (rank == 0) rank = 1;
    return latencies_ms[std::min(rank, latencies_ms.size()) - 1];
  };
  summary.p50_ms = nearest_rank(0.50);
  summary.p95_ms = nearest_rank(0.95);
  summary.p99_ms = nearest_rank(0.99);
  return summary;
}

double QphDs(const MetricInputs& in) {
  double denominator = in.t_qr1_sec + in.t_dm_sec + in.t_qr2_sec +
                       0.01 * in.streams * in.t_load_sec;
  if (denominator <= 0.0 || in.streams <= 0 || in.scale_factor <= 0.0) {
    return 0.0;
  }
  double total_queries = 2.0 * kQueriesPerRun * in.streams;  // 198 * S
  return in.scale_factor * 3600.0 * total_queries / denominator;
}

std::string FailureReport::ToString() const {
  if (empty()) return "no failures, no retries\n";
  std::string out = StringPrintf(
      "%zu failed work item(s), %lld retr%s total\n", failures.size(),
      static_cast<long long>(total_retries),
      total_retries == 1 ? "y" : "ies");
  for (const QueryFailure& f : failures) {
    if (f.phase == "dm") {
      out += StringPrintf("  [dm] after %d attempt(s): %s\n", f.attempts,
                          f.error.c_str());
    } else {
      out += StringPrintf("  [%s] query%02d stream %d after %d attempt(s): %s\n",
                          f.phase.c_str(), f.template_id, f.stream,
                          f.attempts, f.error.c_str());
    }
  }
  return out;
}

double PricePerformance(double tco_dollars, double qphds) {
  if (qphds <= 0.0) return 0.0;
  return tco_dollars / qphds;
}

std::string FormatMetricReport(const MetricInputs& in, double tco_dollars) {
  double qphds = QphDs(in);
  std::string out;
  if (!in.workload_profile.empty() && in.workload_profile != "uniform") {
    out += StringPrintf("workload profile          %10s  (not metric-valid)\n",
                        in.workload_profile.c_str());
  }
  out += StringPrintf("scale factor (SF)         %10.3f\n", in.scale_factor);
  out += StringPrintf("streams (S)               %10d\n", in.streams);
  out += StringPrintf("queries executed (198*S)  %10d\n",
                      2 * kQueriesPerRun * in.streams);
  out += StringPrintf("T_Load                    %10.3f s\n", in.t_load_sec);
  out += StringPrintf("T_QR1                     %10.3f s\n", in.t_qr1_sec);
  out += StringPrintf("T_DM                      %10.3f s\n", in.t_dm_sec);
  out += StringPrintf("T_QR2                     %10.3f s\n", in.t_qr2_sec);
  out += StringPrintf("load charge 0.01*S*T_Load %10.3f s\n",
                      0.01 * in.streams * in.t_load_sec);
  out += StringPrintf("QphDS@SF                  %10.1f\n", qphds);
  if (in.recovery_phases > 0) {
    out += StringPrintf("T_Checkpoint              %10.3f s  (not in metric)\n",
                        in.t_checkpoint_sec);
    out += StringPrintf("T_Recovery                %10.3f s  (not in metric)\n",
                        in.t_recovery_sec);
    out += StringPrintf("recovered state           %10s\n",
                        in.recovery_verified ? "byte-identical" : "MISMATCH");
  }
  if (in.attached) {
    out += StringPrintf("T_Attach (mmap)           %10.3f s  (not in metric)\n",
                        in.t_attach_sec);
  }
  if (in.generation_swaps > 0) {
    out += StringPrintf("generation swaps          %10d\n",
                        in.generation_swaps);
    out += StringPrintf("final generation          %10llu\n",
                        static_cast<unsigned long long>(in.final_generation));
  }
  if (in.service_used) {
    out += "--- query service (admission control) ---\n";
    out += StringPrintf(
        "submitted                 %10lld  (S real client threads)\n",
        static_cast<long long>(in.service_submitted));
    out += StringPrintf("admitted                  %10lld  (queued %lld)\n",
                        static_cast<long long>(in.service_admitted),
                        static_cast<long long>(in.service_queued));
    out += StringPrintf("completed                 %10lld\n",
                        static_cast<long long>(in.service_completed));
    out += StringPrintf("failed                    %10lld\n",
                        static_cast<long long>(in.service_failed));
    out += StringPrintf("shed (overload)           %10lld\n",
                        static_cast<long long>(in.service_shed));
    out += StringPrintf("rejected (queue full)     %10lld\n",
                        static_cast<long long>(in.service_rejected_queue_full));
    out += StringPrintf("rejected (deadline)       %10lld\n",
                        static_cast<long long>(in.service_rejected_deadline));
    if (in.latency_count > 0) {
      out += StringPrintf(
          "latency p50/p95/p99       %10.2f / %.2f / %.2f ms  "
          "(%lld completions)\n",
          in.latency_p50_ms, in.latency_p95_ms, in.latency_p99_ms,
          static_cast<long long>(in.latency_count));
    }
  }
  if (in.failed_queries > 0) {
    out += StringPrintf(
        "failed work items         %10d  (run NOT metric-valid)\n",
        in.failed_queries);
  }
  if (tco_dollars > 0.0) {
    out += StringPrintf("3yr TCO                   %10.2f $\n", tco_dollars);
    out += StringPrintf("$/QphDS@SF                %10.4f\n",
                        PricePerformance(tco_dollars, qphds));
  }
  return out;
}

}  // namespace tpcds
