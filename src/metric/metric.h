#ifndef TPCDS_METRIC_METRIC_H_
#define TPCDS_METRIC_METRIC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tpcds {

/// Queries per stream per query run (the 99 templates); a benchmark run
/// executes 198*S queries across its two query runs (paper §5.3).
inline constexpr int kQueriesPerRun = 99;

/// The measured intervals that feed the primary metric (paper Fig. 11):
/// timed database load, Query Run 1, the Data Maintenance run, Query Run 2.
struct MetricInputs {
  /// Canonical spec of the workload profile the run executed under
  /// (driver/profile.h); empty or "uniform" is the classical benchmark.
  std::string workload_profile;
  double scale_factor = 0.0;
  int streams = 0;
  double t_load_sec = 0.0;
  double t_qr1_sec = 0.0;
  double t_dm_sec = 0.0;
  double t_qr2_sec = 0.0;
  /// Queries (or maintenance runs) that exhausted their retries. A run
  /// with failures completes and reports, but is not metric-valid.
  int failed_queries = 0;
  /// Durability phases (checkpoint after load, crash recovery after data
  /// maintenance) that ran in this execution; 0 when durability was off.
  /// Their times are reported but excluded from the QphDS denominator —
  /// the metric's intervals are fixed by the execution rules (Fig. 11).
  int recovery_phases = 0;
  double t_checkpoint_sec = 0.0;
  double t_recovery_sec = 0.0;
  /// Whether the recovered database was byte-identical (content hash) to
  /// the live one. Only meaningful when recovery_phases > 0.
  bool recovery_verified = false;
  /// O(1) mmap attach of the checkpoint (reported when a cold-start
  /// attach was measured; compare against t_load_sec / t_recovery_sec).
  bool attached = false;
  double t_attach_sec = 0.0;
  /// Dataset generation bookkeeping: how many atomic generation swaps the
  /// run published (data maintenance publishes one per cycle) and the
  /// final generation id the report's hashes are stated against.
  int generation_swaps = 0;
  uint64_t final_generation = 0;
  /// Concurrent query-service telemetry for the two query runs: S real
  /// client threads submit through admission control, so the report can
  /// state tail latency and where every submission went (completed /
  /// queued / shed / rejected). service_used is false for runs that never
  /// routed through a QueryService.
  bool service_used = false;
  int64_t service_submitted = 0;
  int64_t service_admitted = 0;
  int64_t service_queued = 0;
  int64_t service_completed = 0;
  int64_t service_failed = 0;
  int64_t service_shed = 0;
  int64_t service_rejected_queue_full = 0;
  int64_t service_rejected_deadline = 0;
  /// Client-observed completion-latency percentiles over both query runs.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  int64_t latency_count = 0;
};

/// Tail-latency summary of a set of client-observed latencies.
struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int64_t count = 0;
};

/// Nearest-rank percentiles (p50/p95/p99) over `latencies_ms`; all zero
/// when the input is empty.
LatencySummary SummarizeLatenciesMs(std::vector<double> latencies_ms);

/// One work item that exhausted its retry budget during a benchmark run.
struct QueryFailure {
  int template_id = 0;  // 0 for non-query phases (data maintenance)
  int stream = 0;       // -1 for non-query phases
  int attempts = 0;     // attempts made, including the first
  std::string phase;    // "qr1", "qr2", or "dm"
  std::string error;    // the final attempt's error message
};

/// Per-run failure accounting: the driver isolates failures to their
/// stream — a failed query is retried with backoff, then recorded here
/// while every other stream proceeds (robustness over abort-the-world).
struct FailureReport {
  std::vector<QueryFailure> failures;
  /// Extra attempts beyond the first across all work items, whether the
  /// retry eventually succeeded or not.
  int64_t total_retries = 0;

  bool empty() const { return failures.empty() && total_retries == 0; }
  std::string ToString() const;
};

/// The primary performance metric (paper §5.3):
///
///   QphDS@SF = SF * 3600 * (198 * S) /
///              (T_QR1 + T_DM + T_QR2 + 0.01 * S * T_Load)
///
/// The 0.01*S*T_Load term charges a stream-scaled fraction of the load so
/// auxiliary-structure construction cannot hide from the metric; the SF
/// and 3600 factors normalise to queries-per-hour at scale.
double QphDs(const MetricInputs& inputs);

/// Price/performance: $/QphDS@SF given the 3-year total cost of ownership.
double PricePerformance(double tco_dollars, double qphds);

/// A simplified TPC price sheet (paper §5.3: the 3-year TCO covers
/// hardware, software and 24x7 maintenance with 4-hour response).
struct PriceSheet {
  double hardware_dollars = 0.0;
  double software_dollars = 0.0;
  double maintenance_dollars_per_year = 0.0;
  double discounts_dollars = 0.0;  // subtracted, must reflect real pricing

  /// The 3-year total cost of ownership.
  double ThreeYearTco() const {
    return hardware_dollars + software_dollars +
           3.0 * maintenance_dollars_per_year - discounts_dollars;
  }
};

/// Renders the metric computation as a small report (inputs, denominator
/// decomposition, result) for benchmark output.
std::string FormatMetricReport(const MetricInputs& inputs,
                               double tco_dollars);

}  // namespace tpcds

#endif  // TPCDS_METRIC_METRIC_H_
