// The 99-query workload end to end: executes every template once and
// reports per-class timing — the paper's ad-hoc / reporting / hybrid split
// and the standard / iterative-OLAP / data-mining flavours (§4.1).
//
// `-json <path>` additionally writes a machine-readable perf trajectory
// (per-template wall ms, scanned rows/sec, zone-map pruning and Bloom
// counters) so CI can diff against the checked-in baseline JSON. Set
// TPCDS_BENCH_NOVEC=1 to run with the vectorized fast path off (the
// RowSet reference path) for before/after comparisons.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "driver/profile.h"
#include "maintenance/maintenance.h"
#include "metric/metric.h"
#include "qgen/qgen.h"
#include "service/service.h"
#include "templates/templates.h"
#include "util/stopwatch.h"
#include "util/wal.h"

namespace tpcds {
namespace {

struct ClassTally {
  int queries = 0;
  double seconds = 0;
  int64_t rows = 0;
};

struct TemplateResult {
  int id = 0;
  std::string name;
  std::string query_class;
  std::string flavor;
  double seconds = 0;
  int64_t result_rows = 0;
  int64_t rows_scanned = 0;
  int64_t morsels_pruned = 0;
  int64_t bloom_rejects = 0;
  int64_t topk_seen = 0;
  int64_t topk_kept = 0;
  int64_t bytes_touched = 0;
  bool agg_heavy = false;    // instantiated SQL contains a GROUP BY
  bool order_heavy = false;  // instantiated SQL contains an ORDER BY
  double max_q_error = 0.0;  // worst est/actual row mismatch (cost_based)

  double RowsPerSec() const {
    return seconds > 0 ? static_cast<double>(rows_scanned) / seconds : 0.0;
  }
};

/// Subtotal over one operator-shaped template group (aggregate-heavy /
/// order-by-heavy): scanned rows/sec over the group isolates aggregation
/// and sort regressions that the workload-wide total would average away.
struct GroupTally {
  int queries = 0;
  double seconds = 0;
  int64_t rows_scanned = 0;

  double RowsPerSec() const {
    return seconds > 0 ? static_cast<double>(rows_scanned) / seconds : 0.0;
  }
};

GroupTally TallyGroup(const std::vector<TemplateResult>& results,
                      bool TemplateResult::*member) {
  GroupTally g;
  for (const TemplateResult& r : results) {
    if (!(r.*member)) continue;
    ++g.queries;
    g.seconds += r.seconds;
    g.rows_scanned += r.rows_scanned;
  }
  return g;
}

/// The encoded-scan pair: a fixed scan-heavy template subset run first on
/// plain storage, then again after Database::EncodeStorage() rewrites
/// eligible columns as dictionary / RLE / frame-of-reference. Scanned
/// rows/sec on the encoded side feeds the perf gate at the standard
/// threshold, and bytes_touched plus the fact-table compression ratio
/// gate that encoding keeps actually shrinking what scans read.
struct EncodedScanTally {
  int queries = 0;
  double plain_seconds = 0;
  double seconds = 0;
  int64_t rows_scanned = 0;
  int64_t plain_bytes_touched = 0;
  int64_t bytes_touched = 0;
  size_t encoded_columns = 0;
  uint64_t fact_plain_bytes = 0;
  uint64_t fact_encoded_bytes = 0;

  double PlainRowsPerSec() const {
    return plain_seconds > 0
               ? static_cast<double>(rows_scanned) / plain_seconds
               : 0.0;
  }
  double RowsPerSec() const {
    return seconds > 0 ? static_cast<double>(rows_scanned) / seconds : 0.0;
  }
  double FactCompressionRatio() const {
    return fact_encoded_bytes > 0 ? static_cast<double>(fact_plain_bytes) /
                                        static_cast<double>(fact_encoded_bytes)
                                  : 1.0;
  }
};

/// Runs the subset twice around EncodeStorage(); the database is left
/// encoded afterwards (later maintenance cycles decode what they mutate
/// via EnsureOwned, which is part of the workload being measured).
EncodedScanTally RunEncodedScan(Database* db,
                                const PlannerOptions& options) {
  // Fact-scan-dominated templates: big sequential reads over the sales /
  // returns / inventory tables with selective date and string predicates.
  constexpr int kTemplateIds[] = {3, 7, 27, 42, 52, 55, 82, 96, 98};
  constexpr const char* kFactTables[] = {
      "store_sales", "catalog_sales", "web_sales", "inventory"};

  QueryGenerator qgen(19620718);
  std::vector<std::string> statements;
  for (int id : kTemplateIds) {
    const QueryTemplate* t = FindTemplate(id);
    if (t == nullptr) continue;
    Result<std::string> sql = qgen.Instantiate(*t, 1);
    if (!sql.ok()) continue;  // skipped on both sides, so the pair stays fair
    statements.push_back(*sql);
  }

  // Each side runs the subset kReps times: a single pass is ~70 ms at
  // smoke scale, too noisy against a 30% regression threshold.
  constexpr int kReps = 3;
  EncodedScanTally tally;
  auto sweep = [&](double* seconds, int64_t* bytes, bool count) {
    for (int rep = 0; rep < kReps; ++rep) {
      for (const std::string& sql : statements) {
        ExecStats stats;
        Stopwatch timer;
        Result<QueryResult> r = db->Query(sql, options, &stats);
        if (!r.ok()) {
          std::fprintf(stderr, "encoded scan: %s\n",
                       r.status().ToString().c_str());
          std::exit(1);
        }
        *seconds += timer.ElapsedSeconds();
        *bytes += stats.bytes_touched;
        if (count) {
          ++tally.queries;
          tally.rows_scanned += stats.rows_scanned;
        }
      }
    }
  };

  sweep(&tally.plain_seconds, &tally.plain_bytes_touched, true);
  tally.encoded_columns = db->EncodeStorage();
  for (const char* name : kFactTables) {
    Database::CompressionStats cs = db->TableCompression(name);
    tally.fact_plain_bytes += cs.plain_bytes;
    tally.fact_encoded_bytes += cs.encoded_bytes;
  }
  sweep(&tally.seconds, &tally.bytes_touched, false);
  return tally;
}

/// The cost-based-optimizer pair: a join-heavy template subset run with
/// cost_based off (structural FROM-order planning) and again with it on
/// (statistics-driven join ordering, star dimension ordering and pushdown
/// gating). Scanned rows/sec on the cost-based side feeds the perf gate at
/// the standard threshold; the off-side rate additionally gates in-run
/// that enabling the optimizer never loses aggregate throughput. The max
/// q-error across the cost-based runs tracks estimation quality.
struct OptimizerTally {
  int queries = 0;
  double off_seconds = 0;
  double seconds = 0;
  int64_t rows_scanned = 0;
  double max_q_error = 0.0;

  double OffRowsPerSec() const {
    return off_seconds > 0
               ? static_cast<double>(rows_scanned) / off_seconds
               : 0.0;
  }
  double RowsPerSec() const {
    return seconds > 0 ? static_cast<double>(rows_scanned) / seconds : 0.0;
  }
};

OptimizerTally RunOptimizerSweep(Database* db,
                                 const PlannerOptions& base) {
  // Join-heavy star templates where join order and semi-join/Bloom
  // pushdown decisions dominate the plan shape.
  constexpr int kTemplateIds[] = {3, 7, 19, 25, 27, 42, 55, 72, 91, 96};

  QueryGenerator qgen(19620718);
  std::vector<std::string> statements;
  for (int id : kTemplateIds) {
    const QueryTemplate* t = FindTemplate(id);
    if (t == nullptr) continue;
    Result<std::string> sql = qgen.Instantiate(*t, 1);
    if (!sql.ok()) continue;  // skipped on both sides, so the pair stays fair
    statements.push_back(*sql);
  }

  constexpr int kReps = 5;
  OptimizerTally tally;
  // Per template: one untimed pass per mode warms plans, lazy indexes and
  // statistics, then the timed reps interleave the two modes so cache
  // drift and CPU frequency wander hit both sides equally. The per-mode
  // *minimum* over the reps feeds the tally — scheduling spikes at
  // millisecond query times would otherwise drown the plan-quality signal
  // the in-run off-vs-on gate is after.
  for (const std::string& sql : statements) {
    double best[2] = {0.0, 0.0};
    for (int rep = -1; rep < kReps; ++rep) {
      for (int mode = 0; mode < 2; ++mode) {
        PlannerOptions options = base;
        options.cost_based = mode == 1;
        ExecStats stats;
        Stopwatch timer;
        Result<QueryResult> r = db->Query(sql, options, &stats);
        if (!r.ok()) {
          std::fprintf(stderr, "optimizer sweep: %s\n",
                       r.status().ToString().c_str());
          std::exit(1);
        }
        double elapsed = timer.ElapsedSeconds();
        if (rep < 0) continue;  // warm-up pass
        if (rep == 0 || elapsed < best[mode]) best[mode] = elapsed;
        if (mode == 0 && rep == 0) {
          ++tally.queries;
          tally.rows_scanned += stats.rows_scanned;
        }
        if (mode == 1) {
          tally.max_q_error = std::max(tally.max_q_error, stats.max_q_error);
        }
      }
    }
    tally.off_seconds += best[0];
    tally.seconds += best[1];
  }
  return tally;
}

/// One data-maintenance run, WAL on or off: the pair quantifies the
/// durability overhead (logical logging + per-op commit markers) so CI can
/// gate it — WAL-on must stay within 30% of WAL-off throughput.
struct MaintenanceTally {
  int ops = 0;
  double seconds = 0;
  int64_t rows = 0;

  double RowsPerSec() const {
    return seconds > 0 ? static_cast<double>(rows) / seconds : 0.0;
  }
};

/// One cold start from a checkpoint — deep heap load (full CRC sweep +
/// materialization) or O(1) mmap attach — followed by the 99-template
/// sweep against that backing. The heap/mmap pair quantifies the cost of
/// querying straight out of the mapping, which CI gates: mmap-attached
/// throughput must keep at least 90% of the heap-loaded rate.
struct ColdStartTally {
  double open_seconds = 0;  // LoadCheckpoint / AttachCheckpoint wall time
  int queries = 0;
  double seconds = 0;
  int64_t rows_scanned = 0;

  double RowsPerSec() const {
    return seconds > 0 ? static_cast<double>(rows_scanned) / seconds : 0.0;
  }
};

ColdStartTally RunColdStart(const std::string& ckpt_dir, bool mmap_attach,
                            const PlannerOptions& options) {
  Database db;
  Stopwatch open_timer;
  Status st = mmap_attach ? db.AttachCheckpoint(ckpt_dir)
                          : db.LoadCheckpoint(ckpt_dir);
  ColdStartTally tally;
  tally.open_seconds = open_timer.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "cold start (%s): %s\n",
                 mmap_attach ? "mmap" : "heap", st.ToString().c_str());
    std::exit(1);
  }
  QueryGenerator qgen(19620718);
  for (const QueryTemplate& t : AllTemplates()) {
    Result<std::string> sql = qgen.Instantiate(t, 1);
    if (!sql.ok()) continue;
    ExecStats stats;
    Stopwatch timer;
    Result<QueryResult> r = db.Query(*sql, options, &stats);
    if (!r.ok()) {
      std::fprintf(stderr, "cold start (%s) %s: %s\n",
                   mmap_attach ? "mmap" : "heap", t.name.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    ++tally.queries;
    tally.seconds += timer.ElapsedSeconds();
    tally.rows_scanned += stats.rows_scanned;
  }
  return tally;
}

/// The admission-control closed loop: 128 concurrent sessions multiplexed
/// onto two worker slots of one QueryService, each session issuing its
/// next statement only after the previous one resolves. Saturation keeps
/// the admission queue deep (peak ~ sessions - slots) while the closed
/// loop bounds it, so every statement completes — the bench itself
/// asserts the no-lost-queries balance and that the global memory pool
/// drains, and exits 1 otherwise. Client-observed p50/p99 and scanned
/// rows/sec feed the perf gate.
struct ServiceTally {
  int sessions = 0;
  int worker_slots = 0;
  int statements = 0;
  double seconds = 0;
  int64_t rows_scanned = 0;
  LatencySummary latency;
  ServiceCounters counters;

  double RowsPerSec() const {
    return seconds > 0 ? static_cast<double>(rows_scanned) / seconds : 0.0;
  }
};

ServiceTally RunServiceConcurrent(const Database& db,
                                  const PlannerOptions& options) {
  constexpr int kSessions = 128;
  constexpr int kStatementsPerSession = 3;
  // The attach-verify sample set: known-cheap, spans the query classes.
  constexpr int kTemplateIds[] = {3, 27, 55, 82, 96};

  QueryGenerator qgen(19620718);
  std::vector<std::string> statements;
  for (int id : kTemplateIds) {
    const QueryTemplate* t = FindTemplate(id);
    if (t == nullptr) {
      std::fprintf(stderr, "service bench: no template %d\n", id);
      std::exit(1);
    }
    Result<std::string> sql = qgen.Instantiate(*t, 1);
    if (!sql.ok()) {
      std::fprintf(stderr, "service bench q%02d: %s\n", id,
                   sql.status().ToString().c_str());
      std::exit(1);
    }
    statements.push_back(*sql);
  }

  ServiceConfig cfg;
  cfg.worker_slots = 2;
  cfg.max_queue_depth = kSessions + 32;  // closed loop never overflows it
  cfg.planner = options;
  QueryService service(cfg, db);

  ServiceTally tally;
  tally.sessions = kSessions;
  tally.worker_slots = cfg.worker_slots;
  tally.statements = kSessions * kStatementsPerSession;
  std::mutex mu;
  std::vector<double> latencies;
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    SessionOptions so;
    so.tenant = "bench-" + std::to_string(s);
    so.priority = s % 3;
    Session session = service.OpenSession(so);
    clients.emplace_back([&, s, session] {
      for (int i = 0; i < kStatementsPerSession; ++i) {
        const std::string& sql =
            statements[(s * kStatementsPerSession + i) % statements.size()];
        QueryOutcome out = session.Execute(sql);
        if (out.disposition != QueryDisposition::kCompleted) {
          std::fprintf(stderr, "service bench session %d: %s (%s)\n", s,
                       QueryDispositionToString(out.disposition),
                       out.status.ToString().c_str());
          std::exit(1);
        }
        std::lock_guard<std::mutex> lock(mu);
        latencies.push_back(out.total_ms);
        tally.rows_scanned += out.rows_scanned;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  tally.seconds = wall.ElapsedSeconds();
  tally.latency = SummarizeLatenciesMs(std::move(latencies));
  tally.counters = service.Counters();
  if (!tally.counters.Balanced() ||
      tally.counters.completed != tally.statements ||
      tally.counters.pool_bytes_in_use != 0) {
    std::fprintf(stderr, "service bench lost queries:\n%s",
                 tally.counters.ToString().c_str());
    std::exit(1);
  }
  return tally;
}

/// The workload-profile closed loops: the same cheap template pool the
/// service bench uses, but with each session's statement sequence and bind
/// values drawn through a WorkloadProfile — Zipf-skewed substitutions,
/// class-weighted template mixes, iterative session chains. One tally per
/// profile becomes a gated perf group, so a regression in the skewed /
/// chained paths (the chaos-drill workloads) fails CI even when the
/// uniform sweep is unaffected.
ServiceTally RunProfileLoop(const Database& db, const PlannerOptions& options,
                            const WorkloadProfile& profile) {
  constexpr int kSessions = 16;
  constexpr int kStatementsPerSession = 6;
  constexpr int kTemplateIds[] = {3, 27, 55, 82, 96};

  QueryGenerator qgen(19620718);
  std::vector<QueryTemplate> pool;
  for (int id : kTemplateIds) {
    const QueryTemplate* t = FindTemplate(id);
    if (t == nullptr) {
      std::fprintf(stderr, "profile bench: no template %d\n", id);
      std::exit(1);
    }
    pool.push_back(*t);
  }

  // Pre-instantiate outside the timed region: the loop measures execution
  // under admission control, not qgen.
  std::vector<std::vector<std::string>> session_sql(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    std::vector<ProfileSlot> slots =
        qgen.ProfileSequence(s + 1, pool, profile.bind,
                             kStatementsPerSession);
    for (const ProfileSlot& slot : slots) {
      Result<std::string> sql =
          qgen.Instantiate(pool[slot.template_index], s + 1, 0,
                           &profile.bind, slot.chain_step);
      if (!sql.ok()) {
        std::fprintf(stderr, "profile bench (%s) stream %d: %s\n",
                     profile.name.c_str(), s + 1,
                     sql.status().ToString().c_str());
        std::exit(1);
      }
      session_sql[s].push_back(*sql);
    }
  }

  ServiceConfig cfg;
  cfg.worker_slots = 2;
  cfg.max_queue_depth = kSessions + 16;  // closed loop never overflows it
  cfg.planner = options;
  QueryService service(cfg, db);

  ServiceTally tally;
  tally.sessions = kSessions;
  tally.worker_slots = cfg.worker_slots;
  tally.statements = kSessions * kStatementsPerSession;
  std::mutex mu;
  std::vector<double> latencies;
  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    SessionOptions so;
    so.tenant = profile.name + "-" + std::to_string(s);
    Session session = service.OpenSession(so);
    clients.emplace_back([&, s, session] {
      for (const std::string& sql : session_sql[s]) {
        QueryOutcome out = session.Execute(sql);
        if (out.disposition != QueryDisposition::kCompleted) {
          std::fprintf(stderr, "profile bench (%s) session %d: %s (%s)\n",
                       profile.name.c_str(), s,
                       QueryDispositionToString(out.disposition),
                       out.status.ToString().c_str());
          std::exit(1);
        }
        std::lock_guard<std::mutex> lock(mu);
        latencies.push_back(out.total_ms);
        tally.rows_scanned += out.rows_scanned;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  tally.seconds = wall.ElapsedSeconds();
  tally.latency = SummarizeLatenciesMs(std::move(latencies));
  tally.counters = service.Counters();
  if (!tally.counters.Balanced() ||
      tally.counters.completed != tally.statements ||
      !tally.counters.PoolDrained()) {
    std::fprintf(stderr, "profile bench (%s) lost queries:\n%s",
                 profile.name.c_str(), tally.counters.ToString().c_str());
    std::exit(1);
  }
  return tally;
}

MaintenanceTally RunMaintenanceCycle(Database* db, double sf, int cycle,
                                     WalWriter* wal) {
  MaintenanceOptions options;
  options.scale_factor = sf;
  options.refresh_cycle = cycle;
  options.dimension_updates = 50;
  MaintenanceReport report;
  Stopwatch timer;
  Status st = RunDataMaintenance(db, options, &report, wal);
  MaintenanceTally tally;
  tally.seconds = timer.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "data maintenance (cycle %d): %s\n", cycle,
                 st.ToString().c_str());
    std::exit(1);
  }
  tally.ops = static_cast<int>(report.operations.size());
  tally.rows = report.TotalRows();
  return tally;
}

void WriteJson(const char* path, double sf, bool vectorized,
               const std::vector<TemplateResult>& results,
               const MaintenanceTally& dm_off,
               const MaintenanceTally& dm_on,
               const ColdStartTally& attach_heap,
               const ColdStartTally& attach_mmap,
               const ServiceTally& svc, const EncodedScanTally& enc,
               const OptimizerTally& opt,
               const std::vector<std::pair<std::string, ServiceTally>>&
                   profiles) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  double total_seconds = 0;
  int64_t total_scanned = 0;
  int64_t total_pruned = 0;
  int64_t total_bloom = 0;
  int64_t total_topk_seen = 0;
  int64_t total_topk_kept = 0;
  int64_t total_bytes = 0;
  for (const TemplateResult& r : results) {
    total_seconds += r.seconds;
    total_scanned += r.rows_scanned;
    total_pruned += r.morsels_pruned;
    total_bloom += r.bloom_rejects;
    total_topk_seen += r.topk_seen;
    total_topk_kept += r.topk_kept;
    total_bytes += r.bytes_touched;
  }
  GroupTally agg = TallyGroup(results, &TemplateResult::agg_heavy);
  GroupTally order = TallyGroup(results, &TemplateResult::order_heavy);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bench_query_throughput\",\n");
  std::fprintf(f, "  \"scale_factor\": %.4f,\n", sf);
  std::fprintf(f, "  \"vectorized\": %s,\n", vectorized ? "true" : "false");
  std::fprintf(f, "  \"total_seconds\": %.6f,\n", total_seconds);
  std::fprintf(f, "  \"total_rows_scanned\": %lld,\n",
               static_cast<long long>(total_scanned));
  std::fprintf(f, "  \"total_rows_per_sec\": %.1f,\n",
               total_seconds > 0 ? total_scanned / total_seconds : 0.0);
  std::fprintf(f, "  \"total_morsels_pruned\": %lld,\n",
               static_cast<long long>(total_pruned));
  std::fprintf(f, "  \"total_bloom_rejects\": %lld,\n",
               static_cast<long long>(total_bloom));
  std::fprintf(f, "  \"total_topk_seen\": %lld,\n",
               static_cast<long long>(total_topk_seen));
  std::fprintf(f, "  \"total_topk_kept\": %lld,\n",
               static_cast<long long>(total_topk_kept));
  std::fprintf(f, "  \"total_bytes_touched\": %lld,\n",
               static_cast<long long>(total_bytes));
  std::fprintf(f, "  \"groups\": {\n");
  std::fprintf(f,
               "    \"agg_heavy\": {\"queries\": %d, \"seconds\": %.6f, "
               "\"rows_scanned\": %lld, \"rows_per_sec\": %.1f},\n",
               agg.queries, agg.seconds,
               static_cast<long long>(agg.rows_scanned), agg.RowsPerSec());
  std::fprintf(f,
               "    \"order_by_heavy\": {\"queries\": %d, \"seconds\": %.6f, "
               "\"rows_scanned\": %lld, \"rows_per_sec\": %.1f},\n",
               order.queries, order.seconds,
               static_cast<long long>(order.rows_scanned),
               order.RowsPerSec());
  std::fprintf(f,
               "    \"maintenance_wal_off\": {\"ops\": %d, \"seconds\": "
               "%.6f, \"rows\": %lld, \"rows_per_sec\": %.1f},\n",
               dm_off.ops, dm_off.seconds,
               static_cast<long long>(dm_off.rows), dm_off.RowsPerSec());
  std::fprintf(f,
               "    \"maintenance_wal_on\": {\"ops\": %d, \"seconds\": "
               "%.6f, \"rows\": %lld, \"rows_per_sec\": %.1f},\n",
               dm_on.ops, dm_on.seconds,
               static_cast<long long>(dm_on.rows), dm_on.RowsPerSec());
  std::fprintf(f,
               "    \"attach_heap\": {\"open_seconds\": %.6f, \"queries\": "
               "%d, \"seconds\": %.6f, \"rows_scanned\": %lld, "
               "\"rows_per_sec\": %.1f},\n",
               attach_heap.open_seconds, attach_heap.queries,
               attach_heap.seconds,
               static_cast<long long>(attach_heap.rows_scanned),
               attach_heap.RowsPerSec());
  std::fprintf(f,
               "    \"attach_mmap\": {\"open_seconds\": %.6f, \"queries\": "
               "%d, \"seconds\": %.6f, \"rows_scanned\": %lld, "
               "\"rows_per_sec\": %.1f},\n",
               attach_mmap.open_seconds, attach_mmap.queries,
               attach_mmap.seconds,
               static_cast<long long>(attach_mmap.rows_scanned),
               attach_mmap.RowsPerSec());
  std::fprintf(f,
               "    \"service_concurrent\": {\"sessions\": %d, "
               "\"statements\": %d, \"seconds\": %.6f, "
               "\"rows_scanned\": %lld, \"rows_per_sec\": %.1f, "
               "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
               "\"peak_queue_depth\": %lld, \"shed\": %lld, "
               "\"rejected\": %lld},\n",
               svc.sessions, svc.statements, svc.seconds,
               static_cast<long long>(svc.rows_scanned), svc.RowsPerSec(),
               svc.latency.p50_ms, svc.latency.p95_ms, svc.latency.p99_ms,
               static_cast<long long>(svc.counters.peak_queue_depth),
               static_cast<long long>(svc.counters.shed),
               static_cast<long long>(svc.counters.rejected_queue_full +
                                      svc.counters.rejected_deadline));
  for (const auto& [name, pt] : profiles) {
    std::fprintf(f,
                 "    \"%s\": {\"sessions\": %d, \"statements\": %d, "
                 "\"seconds\": %.6f, \"rows_scanned\": %lld, "
                 "\"rows_per_sec\": %.1f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f},\n",
                 name.c_str(), pt.sessions, pt.statements, pt.seconds,
                 static_cast<long long>(pt.rows_scanned), pt.RowsPerSec(),
                 pt.latency.p50_ms, pt.latency.p95_ms, pt.latency.p99_ms);
  }
  std::fprintf(f,
               "    \"encoded_scan\": {\"queries\": %d, \"seconds\": %.6f, "
               "\"rows_scanned\": %lld, \"rows_per_sec\": %.1f, "
               "\"bytes_touched\": %lld, \"plain_seconds\": %.6f, "
               "\"plain_rows_per_sec\": %.1f, \"plain_bytes_touched\": "
               "%lld, \"encoded_columns\": %lld, "
               "\"fact_plain_bytes\": %llu, \"fact_encoded_bytes\": %llu, "
               "\"fact_compression_ratio\": %.3f},\n",
               enc.queries, enc.seconds,
               static_cast<long long>(enc.rows_scanned), enc.RowsPerSec(),
               static_cast<long long>(enc.bytes_touched), enc.plain_seconds,
               enc.PlainRowsPerSec(),
               static_cast<long long>(enc.plain_bytes_touched),
               static_cast<long long>(enc.encoded_columns),
               static_cast<unsigned long long>(enc.fact_plain_bytes),
               static_cast<unsigned long long>(enc.fact_encoded_bytes),
               enc.FactCompressionRatio());
  // "rows_per_sec" is the cost-based side (the default configuration, so
  // it takes the standard baseline gate); the off side is in-run context.
  std::fprintf(f,
               "    \"optimizer\": {\"queries\": %d, \"seconds\": %.6f, "
               "\"rows_scanned\": %lld, \"rows_per_sec\": %.1f, "
               "\"cost_off_seconds\": %.6f, \"cost_off_rows_per_sec\": "
               "%.1f, \"max_q_error\": %.3f}\n",
               opt.queries, opt.seconds,
               static_cast<long long>(opt.rows_scanned), opt.RowsPerSec(),
               opt.off_seconds, opt.OffRowsPerSec(), opt.max_q_error);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"templates\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const TemplateResult& r = results[i];
    std::fprintf(
        f,
        "    {\"id\": %d, \"name\": \"%s\", \"class\": \"%s\", "
        "\"flavor\": \"%s\", \"seconds\": %.6f, \"result_rows\": %lld, "
        "\"rows_scanned\": %lld, \"rows_per_sec\": %.1f, "
        "\"morsels_pruned\": %lld, \"bloom_rejects\": %lld, "
        "\"topk_seen\": %lld, \"topk_kept\": %lld, "
        "\"bytes_touched\": %lld, \"max_q_error\": %.3f, "
        "\"agg_heavy\": %s, \"order_by_heavy\": %s}%s\n",
        r.id, r.name.c_str(), r.query_class.c_str(), r.flavor.c_str(),
        r.seconds, static_cast<long long>(r.result_rows),
        static_cast<long long>(r.rows_scanned), r.RowsPerSec(),
        static_cast<long long>(r.morsels_pruned),
        static_cast<long long>(r.bloom_rejects),
        static_cast<long long>(r.topk_seen),
        static_cast<long long>(r.topk_kept),
        static_cast<long long>(r.bytes_touched), r.max_q_error,
        r.agg_heavy ? "true" : "false", r.order_heavy ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void Run(const char* json_path) {
  double sf = bench::BenchScaleFactor(0.01);
  std::unique_ptr<Database> db = bench::LoadDatabase(sf);
  // One analyze pass up front: cost-based planning (on by default) would
  // otherwise collect statistics lazily inside the first timed queries.
  db->AnalyzeStorage();
  QueryGenerator qgen(19620718);

  PlannerOptions options = db->default_options();
  const char* novec = std::getenv("TPCDS_BENCH_NOVEC");
  if (novec != nullptr && std::strcmp(novec, "0") != 0) {
    options.vectorized_execution = false;
  }

  std::map<std::string, ClassTally> by_class;
  std::map<std::string, ClassTally> by_flavor;
  std::vector<TemplateResult> results;
  double total = 0;
  double slowest = 0;
  int slowest_id = 0;
  for (const QueryTemplate& t : AllTemplates()) {
    Result<std::string> sql = qgen.Instantiate(t, 1);
    if (!sql.ok()) {
      std::fprintf(stderr, "%s: %s\n", t.name.c_str(),
                   sql.status().ToString().c_str());
      continue;
    }
    ExecStats stats;
    Stopwatch timer;
    Result<QueryResult> r = db->Query(*sql, options, &stats);
    double seconds = timer.ElapsedSeconds();
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", t.name.c_str(),
                   r.status().ToString().c_str());
      continue;
    }
    total += seconds;
    if (seconds > slowest) {
      slowest = seconds;
      slowest_id = t.id;
    }
    TemplateResult res;
    res.id = t.id;
    res.name = t.name;
    res.query_class = QueryClassToString(t.query_class);
    res.flavor = QueryFlavorToString(t.flavor);
    res.seconds = seconds;
    res.result_rows = static_cast<int64_t>(r->rows.size());
    res.rows_scanned = stats.rows_scanned;
    res.morsels_pruned = stats.morsels_pruned;
    res.bloom_rejects = stats.bloom_rejects;
    res.topk_seen = stats.topk_seen;
    res.topk_kept = stats.topk_kept;
    res.bytes_touched = stats.bytes_touched;
    res.max_q_error = stats.max_q_error;
    res.agg_heavy = sql->find("GROUP BY") != std::string::npos;
    res.order_heavy = sql->find("ORDER BY") != std::string::npos;
    results.push_back(res);

    ClassTally& cls = by_class[res.query_class];
    ++cls.queries;
    cls.seconds += seconds;
    cls.rows += res.result_rows;
    ClassTally& flv = by_flavor[res.flavor];
    ++flv.queries;
    flv.seconds += seconds;
    flv.rows += res.result_rows;
  }

  std::printf("=== 99-Query Workload (SF %.3f, single stream%s) ===\n\n", sf,
              options.vectorized_execution ? "" : ", vectorized off");
  std::printf("%-16s %8s %10s %12s %14s\n", "class", "queries", "seconds",
              "avg ms", "result rows");
  for (const auto& [name, tally] : by_class) {
    std::printf("%-16s %8d %10.2f %12.1f %14lld\n", name.c_str(),
                tally.queries, tally.seconds,
                1000.0 * tally.seconds / tally.queries,
                static_cast<long long>(tally.rows));
  }
  std::printf("\n%-16s %8s %10s %12s %14s\n", "flavor", "queries",
              "seconds", "avg ms", "result rows");
  for (const auto& [name, tally] : by_flavor) {
    std::printf("%-16s %8d %10.2f %12.1f %14lld\n", name.c_str(),
                tally.queries, tally.seconds,
                1000.0 * tally.seconds / tally.queries,
                static_cast<long long>(tally.rows));
  }
  GroupTally agg = TallyGroup(results, &TemplateResult::agg_heavy);
  GroupTally order = TallyGroup(results, &TemplateResult::order_heavy);
  std::printf("\n%-16s %8s %10s %16s\n", "group", "queries", "seconds",
              "scan rows/sec");
  std::printf("%-16s %8d %10.2f %16.0f\n", "agg_heavy", agg.queries,
              agg.seconds, agg.RowsPerSec());
  std::printf("%-16s %8d %10.2f %16.0f\n", "order_by_heavy", order.queries,
              order.seconds, order.RowsPerSec());

  std::printf("\ntotal %.2f s for 99 queries; slowest q%02d at %.2f s\n",
              total, slowest_id, slowest);
  std::printf(
      "(data-mining extractions return large results by design; their\n"
      "output feeds external tools, paper §4.1)\n");

  // Cost-based optimizer off/on over the join-heavy subset, on plain
  // storage (the encoded-scan section below leaves the database encoded).
  OptimizerTally opt = RunOptimizerSweep(db.get(), options);
  std::printf("\n%-16s %8s %10s %16s\n", "optimizer", "queries", "seconds",
              "scan rows/sec");
  std::printf("%-16s %8d %10.2f %16.0f\n", "cost_based off", opt.queries,
              opt.off_seconds, opt.OffRowsPerSec());
  std::printf("%-16s %8d %10.2f %16.0f\n", "cost_based on", opt.queries,
              opt.seconds, opt.RowsPerSec());
  std::printf("  max q-error %.2f across the cost-based runs\n",
              opt.max_q_error);

  // Cold-start comparison on a checkpoint of the loaded state: deep heap
  // load vs O(1) mmap attach, each followed by the full 99-template sweep
  // against its own backing.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "bench_throughput_ckpt")
          .string();
  std::filesystem::remove_all(ckpt_dir);
  if (Status st = db->SaveCheckpoint(ckpt_dir); !st.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  ColdStartTally attach_heap = RunColdStart(ckpt_dir, false, options);
  ColdStartTally attach_mmap = RunColdStart(ckpt_dir, true, options);
  std::filesystem::remove_all(ckpt_dir);
  std::printf("\n%-16s %12s %10s %16s\n", "cold start", "open s",
              "query s", "scan rows/sec");
  std::printf("%-16s %12.6f %10.2f %16.0f\n", "heap load",
              attach_heap.open_seconds, attach_heap.seconds,
              attach_heap.RowsPerSec());
  std::printf("%-16s %12.6f %10.2f %16.0f\n", "mmap attach",
              attach_mmap.open_seconds, attach_mmap.seconds,
              attach_mmap.RowsPerSec());

  // Encoded-scan comparison: the scan-heavy subset on plain storage, then
  // again after EncodeStorage(). The database stays encoded from here on;
  // the maintenance cycles below decode the columns they mutate (COW via
  // EnsureOwned), which is the intended mixed read/write behaviour.
  EncodedScanTally enc = RunEncodedScan(db.get(), options);
  std::printf("\n%-16s %8s %10s %16s %16s\n", "encoded scan", "queries",
              "seconds", "scan rows/sec", "bytes touched");
  std::printf("%-16s %8d %10.2f %16.0f %16lld\n", "plain", enc.queries,
              enc.plain_seconds, enc.PlainRowsPerSec(),
              static_cast<long long>(enc.plain_bytes_touched));
  std::printf("%-16s %8d %10.2f %16.0f %16lld\n", "encoded", enc.queries,
              enc.seconds, enc.RowsPerSec(),
              static_cast<long long>(enc.bytes_touched));
  std::printf("  %lld columns encoded; fact tables %.2fx smaller "
              "(%llu -> %llu payload bytes)\n",
              static_cast<long long>(enc.encoded_columns),
              enc.FactCompressionRatio(),
              static_cast<unsigned long long>(enc.fact_plain_bytes),
              static_cast<unsigned long long>(enc.fact_encoded_bytes));

  // Data-maintenance durability overhead: cycle 1 without a WAL, cycle 2
  // through one (disjoint refresh sets, so both cycles do comparable
  // work against the same database).
  MaintenanceTally dm_off = RunMaintenanceCycle(db.get(), sf, 1, nullptr);
  const std::string wal_path =
      (std::filesystem::temp_directory_path() / "bench_throughput.wal")
          .string();
  std::filesystem::remove(wal_path);
  WalWriter wal;
  if (!wal.Open(wal_path).ok()) {
    std::fprintf(stderr, "cannot open WAL at %s\n", wal_path.c_str());
    std::exit(1);
  }
  MaintenanceTally dm_on = RunMaintenanceCycle(db.get(), sf, 2, &wal);
  (void)wal.Close();
  std::filesystem::remove(wal_path);
  std::printf("\n%-20s %6s %10s %16s\n", "maintenance", "ops", "seconds",
              "refresh rows/sec");
  std::printf("%-20s %6d %10.3f %16.0f\n", "wal_off", dm_off.ops,
              dm_off.seconds, dm_off.RowsPerSec());
  std::printf("%-20s %6d %10.3f %16.0f\n", "wal_on", dm_on.ops,
              dm_on.seconds, dm_on.RowsPerSec());

  // Concurrent service under saturation: 128 closed-loop sessions over
  // two worker slots, no query lost (the run aborts otherwise).
  ServiceTally svc = RunServiceConcurrent(*db, options);
  std::printf("\n=== concurrent query service (admission control) ===\n");
  std::printf("  %d sessions x %d statements over %d worker slots\n",
              svc.sessions, svc.statements / svc.sessions,
              svc.worker_slots);
  std::printf("  wall %.3f s, %.0f scanned rows/sec\n", svc.seconds,
              svc.RowsPerSec());
  std::printf("  latency p50 %.1f ms  p95 %.1f ms  p99 %.1f ms\n",
              svc.latency.p50_ms, svc.latency.p95_ms, svc.latency.p99_ms);
  std::printf("  peak queue %lld, peak running %lld, shed %lld, "
              "rejected %lld\n",
              static_cast<long long>(svc.counters.peak_queue_depth),
              static_cast<long long>(svc.counters.peak_running),
              static_cast<long long>(svc.counters.shed),
              static_cast<long long>(svc.counters.rejected_queue_full +
                                     svc.counters.rejected_deadline));

  // Workload-profile closed loops: the chaos-harness presets as standing
  // perf groups (skewed binds, reporting-heavy mix, iterative chains).
  std::vector<std::pair<std::string, ServiceTally>> profiles;
  for (const char* preset : {"hot-skew", "reporting", "chains"}) {
    Result<WorkloadProfile> wp = WorkloadProfile::Preset(preset);
    if (!wp.ok()) {
      std::fprintf(stderr, "profile bench: %s\n",
                   wp.status().ToString().c_str());
      std::exit(1);
    }
    std::string group = "profile_" + std::string(preset);
    std::replace(group.begin(), group.end(), '-', '_');
    profiles.emplace_back(group, RunProfileLoop(*db, options, *wp));
  }
  std::printf("\n=== workload profiles (closed loop, %d sessions) ===\n",
              profiles.front().second.sessions);
  std::printf("%-20s %10s %10s %16s %8s %8s\n", "profile", "stmts",
              "seconds", "scan rows/sec", "p50 ms", "p99 ms");
  for (const auto& [name, pt] : profiles) {
    std::printf("%-20s %10d %10.3f %16.0f %8.1f %8.1f\n", name.c_str(),
                pt.statements, pt.seconds, pt.RowsPerSec(),
                pt.latency.p50_ms, pt.latency.p99_ms);
  }

  if (json_path != nullptr) {
    WriteJson(json_path, sf, options.vectorized_execution, results, dm_off,
              dm_on, attach_heap, attach_mmap, svc, enc, opt, profiles);
  }
}

}  // namespace
}  // namespace tpcds

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [-json <path>]\n", argv[0]);
      return 2;
    }
  }
  tpcds::Run(json_path);
  return 0;
}
