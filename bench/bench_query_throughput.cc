// The 99-query workload end to end: executes every template once and
// reports per-class timing — the paper's ad-hoc / reporting / hybrid split
// and the standard / iterative-OLAP / data-mining flavours (§4.1).

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "qgen/qgen.h"
#include "templates/templates.h"
#include "util/stopwatch.h"

namespace tpcds {
namespace {

struct ClassTally {
  int queries = 0;
  double seconds = 0;
  int64_t rows = 0;
};

void Run() {
  double sf = bench::BenchScaleFactor(0.01);
  std::unique_ptr<Database> db = bench::LoadDatabase(sf);
  QueryGenerator qgen(19620718);

  std::map<std::string, ClassTally> by_class;
  std::map<std::string, ClassTally> by_flavor;
  double total = 0;
  double slowest = 0;
  int slowest_id = 0;
  for (const QueryTemplate& t : AllTemplates()) {
    Result<std::string> sql = qgen.Instantiate(t, 1);
    if (!sql.ok()) {
      std::fprintf(stderr, "%s: %s\n", t.name.c_str(),
                   sql.status().ToString().c_str());
      continue;
    }
    Stopwatch timer;
    Result<QueryResult> r = db->Query(*sql);
    double seconds = timer.ElapsedSeconds();
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", t.name.c_str(),
                   r.status().ToString().c_str());
      continue;
    }
    total += seconds;
    if (seconds > slowest) {
      slowest = seconds;
      slowest_id = t.id;
    }
    ClassTally& cls = by_class[QueryClassToString(t.query_class)];
    ++cls.queries;
    cls.seconds += seconds;
    cls.rows += static_cast<int64_t>(r->rows.size());
    ClassTally& flv = by_flavor[QueryFlavorToString(t.flavor)];
    ++flv.queries;
    flv.seconds += seconds;
    flv.rows += static_cast<int64_t>(r->rows.size());
  }

  std::printf("=== 99-Query Workload (SF %.3f, single stream) ===\n\n", sf);
  std::printf("%-16s %8s %10s %12s %14s\n", "class", "queries", "seconds",
              "avg ms", "result rows");
  for (const auto& [name, tally] : by_class) {
    std::printf("%-16s %8d %10.2f %12.1f %14lld\n", name.c_str(),
                tally.queries, tally.seconds,
                1000.0 * tally.seconds / tally.queries,
                static_cast<long long>(tally.rows));
  }
  std::printf("\n%-16s %8s %10s %12s %14s\n", "flavor", "queries",
              "seconds", "avg ms", "result rows");
  for (const auto& [name, tally] : by_flavor) {
    std::printf("%-16s %8d %10.2f %12.1f %14lld\n", name.c_str(),
                tally.queries, tally.seconds,
                1000.0 * tally.seconds / tally.queries,
                static_cast<long long>(tally.rows));
  }
  std::printf("\ntotal %.2f s for 99 queries; slowest q%02d at %.2f s\n",
              total, slowest_id, slowest);
  std::printf(
      "(data-mining extractions return large results by design; their\n"
      "output feeds external tools, paper §4.1)\n");
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
