// Ablation for the paper's §2.1 claim: the snowstorm schema exercises both
// star-schema execution (star transformation / semi-join reduction) and
// 3NF execution (hash-join pipelines). Sweeps dimension-predicate
// selectivity and compares the two paths on the same star query.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

Database* GlobalDb() {
  static Database* db =
      bench::LoadDatabase(bench::BenchScaleFactor(0.01)).release();
  return db;
}

/// A 4-way star query whose dimension selectivity is controlled by the
/// manager-id band: ~1% of items per manager id unit.
std::string StarQuery(int manager_band) {
  return StringPrintf(
      "SELECT s_store_name, d_moy, SUM(ss_ext_sales_price) AS revenue "
      "FROM store_sales, date_dim, store, item "
      "WHERE ss_sold_date_sk = d_date_sk "
      "  AND ss_store_sk = s_store_sk "
      "  AND ss_item_sk = i_item_sk "
      "  AND d_year = 2000 "
      "  AND i_manager_id BETWEEN 1 AND %d "
      "GROUP BY s_store_name, d_moy "
      "ORDER BY revenue DESC",
      manager_band);
}

void BM_Star(benchmark::State& state) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.star_transformation = true;
  std::string sql = StarQuery(static_cast<int>(state.range(0)));
  ExecStats stats;
  for (auto _ : state) {
    stats = ExecStats{};
    Result<QueryResult> r = db->Query(sql, options, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["fact_rows_pruned"] =
      static_cast<double>(stats.star_filtered_rows);
  state.counters["rows_joined"] = static_cast<double>(stats.rows_joined);
}
BENCHMARK(BM_Star)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Unit(
    benchmark::kMillisecond);

// Index-driven join path: dimensions without local predicates are probed
// through their hash indexes instead of scanned+hashed. The item filter
// keeps item on the scan path, but date_dim and store qualify when the
// query drops their predicates — measure the unfiltered 3-way join.
void BM_IndexJoin(benchmark::State& state) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.star_transformation = false;
  options.index_joins = true;
  // No dimension predicates: every dimension is index-join eligible.
  const char* sql =
      "SELECT s_store_name, SUM(ss_ext_sales_price) AS revenue "
      "FROM store_sales, store, item "
      "WHERE ss_store_sk = s_store_sk AND ss_item_sk = i_item_sk "
      "GROUP BY s_store_name ORDER BY revenue DESC";
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(sql, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexJoin)->Unit(benchmark::kMillisecond);

void BM_SameQueryHashJoin(benchmark::State& state) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.star_transformation = false;
  options.index_joins = false;
  const char* sql =
      "SELECT s_store_name, SUM(ss_ext_sales_price) AS revenue "
      "FROM store_sales, store, item "
      "WHERE ss_store_sk = s_store_sk AND ss_item_sk = i_item_sk "
      "GROUP BY s_store_name ORDER BY revenue DESC";
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(sql, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SameQueryHashJoin)->Unit(benchmark::kMillisecond);

void BM_HashOnly(benchmark::State& state) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.star_transformation = false;
  std::string sql = StarQuery(static_cast<int>(state.range(0)));
  ExecStats stats;
  for (auto _ : state) {
    stats = ExecStats{};
    Result<QueryResult> r = db->Query(sql, options, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows_joined"] = static_cast<double>(stats.rows_joined);
}
BENCHMARK(BM_HashOnly)->Arg(1)->Arg(10)->Arg(50)->Arg(100)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tpcds

BENCHMARK_MAIN();
