// Intra-query parallelism ablation: the same join-heavy star query run
// with the morsel executor at 1, 2, 4 and 8 workers, plus an all-cores
// run (parallelism 0). Results are byte-identical at every level (the
// engine_parallel_test suite asserts this); only wall time should move.
// The serial baseline is BM_Workers/1 — compare against /4 or /8 for the
// single-stream speedup.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

Database* GlobalDb() {
  // A larger default than the other benches: morsel parallelism needs
  // enough fact rows per operator to amortise task dispatch.
  static Database* db =
      bench::LoadDatabase(bench::BenchScaleFactor(0.05)).release();
  return db;
}

/// The bench_star_vs_hash star query at a mid selectivity: four tables,
/// three joins, grouped aggregation — every parallel operator on the path.
std::string StarQuery() {
  return "SELECT s_store_name, d_moy, SUM(ss_ext_sales_price) AS revenue "
         "FROM store_sales, date_dim, store, item "
         "WHERE ss_sold_date_sk = d_date_sk "
         "  AND ss_store_sk = s_store_sk "
         "  AND ss_item_sk = i_item_sk "
         "  AND d_year = 2000 "
         "  AND i_manager_id BETWEEN 1 AND 50 "
         "GROUP BY s_store_name, d_moy "
         "ORDER BY revenue DESC";
}

void RunQuery(benchmark::State& state, const std::string& sql,
              int parallelism) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.parallelism = parallelism;
  int64_t rows = 0;
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(sql, options, nullptr);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    rows = static_cast<int64_t>(r->rows.size());
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}

void BM_Workers(benchmark::State& state) {
  RunQuery(state, StarQuery(), static_cast<int>(state.range(0)));
}
BENCHMARK(BM_Workers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_AllCores(benchmark::State& state) {
  RunQuery(state, StarQuery(), 0);
}
BENCHMARK(BM_AllCores)->Unit(benchmark::kMillisecond);

// The 3NF shape of the same query (star transformation off): the fact
// table flows through plain hash joins, so the parallel build + probe
// carries the speedup instead of the semi-join reductions.
void BM_WorkersHashOnly(benchmark::State& state) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.star_transformation = false;
  options.parallelism = static_cast<int>(state.range(0));
  std::string sql = StarQuery();
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(sql, options, nullptr);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WorkersHashOnly)->Arg(1)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace tpcds

// Like BENCHMARK_MAIN(), but with a `-json <path>` convenience flag that
// expands to google-benchmark's --benchmark_out/--benchmark_out_format
// pair so CI invokes every bench the same way.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  for (size_t i = 1; i < args.size(); ++i) {
    if (std::strcmp(args[i], "-json") == 0 && i + 1 < args.size()) {
      out_flag = std::string("--benchmark_out=") + args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      break;
    }
  }
  static char format_flag[] = "--benchmark_out_format=json";
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(format_flag);
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
