// Reproduces Table 1 of the paper (schema statistics) from the schema
// catalog, plus the paper's empirical row-length figures from generated
// data, and prints the Fig. 1 store-channel snowflake.

#include <algorithm>
#include <cstdio>
#include <limits>

#include "dsgen/generator.h"
#include "schema/schema.h"
#include "schema/schema_stats.h"
#include "util/flatfile.h"

namespace tpcds {
namespace {

void Run() {
  const Schema& schema = TpcdsSchema();
  SchemaStats stats = ComputeSchemaStats(schema);

  std::printf("=== Table 1: Schema Statistics (paper vs. this repo) ===\n");
  std::printf("%-28s %10s %10s\n", "statistic", "paper", "measured");
  std::printf("%-28s %10d %10d\n", "fact tables", 7, stats.num_fact_tables);
  std::printf("%-28s %10d %10d\n", "dimension tables", 17,
              stats.num_dimension_tables);
  std::printf("%-28s %10d %10d\n", "columns min", 3, stats.min_columns);
  std::printf("%-28s %10d %10d\n", "columns max", 34, stats.max_columns);
  std::printf("%-28s %10d %10.1f\n", "columns avg", 18, stats.avg_columns);
  std::printf("%-28s %10d %10d\n", "foreign keys", 104,
              stats.num_foreign_keys);

  // Empirical row lengths: generate a sample of every table and measure
  // flat-file bytes per row (the paper's footnote 4 definition).
  double min_avg = std::numeric_limits<double>::max();
  double max_avg = 0;
  double sum_avg = 0;
  std::string min_table;
  std::string max_table;
  GeneratorOptions options;
  options.scale_factor = 0.01;
  for (const std::string& table : GeneratorTableNames()) {
    Result<std::unique_ptr<TableGenerator>> gen =
        MakeGenerator(table, options);
    if (!gen.ok()) continue;
    CountingRowSink sink;
    int64_t sample = std::min<int64_t>((*gen)->NumUnits(), 2000);
    if (!(*gen)->GenerateUnits(0, sample, &sink).ok() || sink.rows() == 0) {
      continue;
    }
    double avg = static_cast<double>(sink.bytes()) /
                 static_cast<double>(sink.rows());
    sum_avg += avg;
    if (avg < min_avg) {
      min_avg = avg;
      min_table = table;
    }
    if (avg > max_avg) {
      max_avg = avg;
      max_table = table;
    }
  }
  double avg_avg = sum_avg / static_cast<double>(GeneratorTableNames().size());
  std::printf("%-28s %10d %10.0f  (%s)\n", "row bytes min", 16, min_avg,
              min_table.c_str());
  std::printf("%-28s %10d %10.0f  (%s)\n", "row bytes max", 317, max_avg,
              max_table.c_str());
  std::printf("%-28s %10d %10.0f\n", "row bytes avg", 136, avg_avg);

  std::printf("\n=== Figure 1: Store Sales Snowflake ===\n%s\n",
              FormatSnowflake(schema, "store_sales").c_str());
  std::printf("%s", FormatSnowflake(schema, "store_returns").c_str());
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
