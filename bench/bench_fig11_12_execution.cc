// Reproduces Figures 11 and 12 of the paper: the benchmark execution
// order (load test -> Query Run 1 -> Data Maintenance -> Query Run 2) and
// the minimum-streams schedule, ending in the QphDS@SF metric (§5.3).

#include <cstdio>
#include <cstdlib>

#include "driver/driver.h"
#include "metric/metric.h"
#include "scaling/scaling.h"

namespace tpcds {
namespace {

void Run() {
  std::printf("=== Figure 12: Minimum Required Query Streams ===\n");
  std::printf("%-14s %s\n", "scale factor", "minimum streams");
  for (int sf : ScalingModel::ValidScaleFactors()) {
    std::printf("%-14d %d\n", sf, ScalingModel::MinimumStreams(sf));
  }

  std::printf("\n=== Figure 11: Benchmark Execution Order ===\n");
  std::printf("database load -> query run 1 -> data maintenance -> "
              "query run 2\n\n");

  const char* env = std::getenv("TPCDS_BENCH_SF");
  double sf = env != nullptr ? std::strtod(env, nullptr) : 0.005;
  BenchmarkConfig config;
  config.scale_factor = sf;
  config.streams = 3;  // the SF <= 100 minimum (Fig. 12)
  config.queries_per_stream = 20;
  config.refresh_fraction = 0.02;
  config.dimension_updates = 50;

  Result<BenchmarkResult> result = RunBenchmark(config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("SF %.3f, %d streams, %d queries/stream/run:\n\n", sf,
              result->streams, config.queries_per_stream);
  std::printf("  load test          %8.2f s\n", result->t_load_sec);
  std::printf("  query run 1        %8.2f s  (%zu queries)\n",
              result->t_qr1_sec, result->qr1_queries.size());
  std::printf("  data maintenance   %8.2f s  (%lld rows)\n",
              result->t_dm_sec,
              static_cast<long long>(result->dm_report.TotalRows()));
  std::printf("  query run 2        %8.2f s  (%zu queries)\n\n",
              result->t_qr2_sec, result->qr2_queries.size());
  std::printf("%s\n",
              FormatMetricReport(result->ToMetricInputs(),
                                 /*tco_dollars=*/350000.0)
                  .c_str());
  std::printf(
      "(Quick run with %d of 99 queries per stream; the full workload is\n"
      "exercised by examples/full_benchmark and the test suite.)\n",
      config.queries_per_stream);
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
