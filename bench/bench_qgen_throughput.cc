// Validates the coupled-tools claim of ref [10] ("Generating Thousand
// Benchmark Queries in Seconds"): template instantiation plus SQL parsing
// throughput for the full 99-template workload.

#include <benchmark/benchmark.h>

#include "engine/parser.h"
#include "qgen/qgen.h"
#include "templates/templates.h"

namespace tpcds {
namespace {

void BM_InstantiateAll99(benchmark::State& state) {
  QueryGenerator qgen(19620718);
  const std::vector<QueryTemplate>& templates = AllTemplates();
  int stream = 0;
  int64_t queries = 0;
  for (auto _ : state) {
    for (const QueryTemplate& t : templates) {
      Result<std::string> sql = qgen.Instantiate(t, stream);
      if (!sql.ok()) state.SkipWithError(sql.status().ToString().c_str());
      benchmark::DoNotOptimize(sql);
      ++queries;
    }
    ++stream;
  }
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstantiateAll99)->Unit(benchmark::kMillisecond);

void BM_InstantiateAndParseAll99(benchmark::State& state) {
  QueryGenerator qgen(19620718);
  const std::vector<QueryTemplate>& templates = AllTemplates();
  int stream = 0;
  int64_t queries = 0;
  for (auto _ : state) {
    for (const QueryTemplate& t : templates) {
      Result<std::string> sql = qgen.Instantiate(t, stream);
      if (!sql.ok()) state.SkipWithError(sql.status().ToString().c_str());
      auto parsed = ParseSql(*sql);
      if (!parsed.ok()) {
        state.SkipWithError(parsed.status().ToString().c_str());
      }
      benchmark::DoNotOptimize(parsed);
      ++queries;
    }
    ++stream;
  }
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstantiateAndParseAll99)->Unit(benchmark::kMillisecond);

void BM_StreamPermutation(benchmark::State& state) {
  QueryGenerator qgen(19620718);
  int stream = 0;
  for (auto _ : state) {
    std::vector<int> p = qgen.StreamPermutation(stream++, 99);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_StreamPermutation);

}  // namespace
}  // namespace tpcds

BENCHMARK_MAIN();
