// Reproduces Figure 2 of the paper: the store-sales-by-month distribution.
// Prints three series per month: the 2001 census retail index (the paper's
// diamond curve), the TPC-DS 3-zone step function (the square curve), and
// the empirical share measured from generated store_sales data.

#include <array>
#include <cstdio>
#include <cstdlib>

#include "dist/zones.h"
#include "dsgen/generator.h"
#include "dsgen/keys.h"
#include "util/flatfile.h"

namespace tpcds {
namespace {

/// Sink that histograms ss_sold_date_sk (field 0) by calendar month.
class MonthHistogramSink : public RowSink {
 public:
  Status Append(const std::vector<std::string>& fields) override {
    int64_t sk = std::strtoll(fields[0].c_str(), nullptr, 10);
    ++counts_[static_cast<size_t>(SkToDate(sk).month() - 1)];
    ++total_;
    return Status::OK();
  }

  double Share(int month) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(
                             counts_[static_cast<size_t>(month - 1)]) /
                             static_cast<double>(total_);
  }
  int64_t total() const { return total_; }

 private:
  std::array<int64_t, 12> counts_{};
  int64_t total_ = 0;
};

void Run() {
  GeneratorOptions options;
  options.scale_factor = 0.02;
  MonthHistogramSink histogram;
  Status st = GenerateSalesChannel("store_sales", options, &histogram,
                                   nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::abort();
  }

  // The model's expected monthly share: zone daily weight x days in month,
  // normalised (a non-leap reference year).
  const std::array<ComparabilityZone, 3>& zones = ComparabilityZones();
  constexpr int kMonthDays[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  std::array<double, 12> step{};
  double step_total = 0;
  for (int m = 0; m < 12; ++m) {
    step[static_cast<size_t>(m)] =
        zones[static_cast<size_t>(ZoneOfMonth(m + 1) - 1)].daily_weight *
        kMonthDays[m];
    step_total += step[static_cast<size_t>(m)];
  }

  const std::array<double, 12>& census = CensusMonthlyRetailIndex();
  static const char* kMonths[12] = {"Jan", "Feb", "Mar", "Apr", "May",
                                    "Jun", "Jul", "Aug", "Sep", "Oct",
                                    "Nov", "Dec"};
  std::printf(
      "=== Figure 2: Store Sales Distribution (%lld line items) ===\n",
      static_cast<long long>(histogram.total()));
  std::printf("%-5s %6s %10s %12s %12s\n", "month", "zone", "census",
              "tpcds-step", "generated");
  for (int m = 1; m <= 12; ++m) {
    std::printf("%-5s %6d %9.2f%% %11.2f%% %11.2f%%\n", kMonths[m - 1],
                ZoneOfMonth(m), 100.0 * census[static_cast<size_t>(m - 1)],
                100.0 * step[static_cast<size_t>(m - 1)] / step_total,
                100.0 * histogram.Share(m));
  }
  std::printf(
      "\nzone daily weights (zone1=1): zone2 %.3f, zone3 %.3f\n"
      "(paper: low / medium / high likelihood; uniform within a zone)\n",
      zones[1].daily_weight, zones[2].daily_weight);
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
