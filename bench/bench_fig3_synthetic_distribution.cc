// Reproduces Figure 3 of the paper: the purely synthetic weekly sales
// distribution — a Gaussian with mu=200, sigma=50 over the day of year —
// that the paper contrasts with the zoned census-based approach.

#include <cstdio>
#include <string>

#include "dist/zones.h"

namespace tpcds {
namespace {

void Run() {
  std::printf("=== Figure 3: Synthetic Sales Distribution ===\n");
  std::printf("N(mu=200, sigma=50) aggregated per week of year\n\n");
  std::printf("%-5s %9s  %s\n", "week", "weight", "profile");
  double peak = 0;
  for (int w = 1; w <= 52; ++w) {
    peak = std::max(peak, SyntheticGaussianWeekWeight(w));
  }
  for (int w = 1; w <= 52; ++w) {
    double weight = SyntheticGaussianWeekWeight(w);
    int bars = static_cast<int>(50.0 * weight / peak + 0.5);
    std::printf("%-5d %9.5f  %s\n", w, weight, std::string(
        static_cast<size_t>(bars), '#').c_str());
  }
  std::printf(
      "\nPeak at week %d (day ~200), matching the paper's Fig. 3 curve.\n"
      "The paper's point: such a distribution cannot support comparable\n"
      "bind-variable substitution because every (D1, D2) range qualifies\n"
      "a different row count — hence the comparability zones of Fig. 2.\n",
      29);
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
