// Reproduces the §5.3 metric analysis: how QphDS@SF responds to the load
// time (the 0.01*S charge that prices auxiliary data structures), to the
// stream count, and the arithmetic-vs-geometric-mean argument against a
// power test.

#include <cmath>
#include <cstdio>

#include "metric/metric.h"

namespace tpcds {
namespace {

void Run() {
  std::printf("=== Section 5.3: Metric Sensitivity ===\n\n");

  // 1. Load-time charge: auxiliary data structures (materialised views,
  // join indexes) move time from the query runs into the load. The charge
  // keeps "unlimited auxiliary structures" from being free (the TPC-D
  // failure mode the paper recounts).
  std::printf("load-time charge (SF 1000, S=7 streams):\n");
  std::printf("%-44s %10s %10s\n", "strategy", "denom (s)", "QphDS@SF");
  struct Scenario {
    const char* name;
    double load, qr1, dm, qr2;
  };
  const Scenario scenarios[] = {
      {"no auxiliaries: fast load, slow queries", 3600, 7200, 1800, 7200},
      {"moderate auxiliaries", 7200, 4500, 2000, 4500},
      {"aggressive auxiliaries: 6h load, fast q", 21600, 2500, 2600, 2500},
      {"pathological: 20h load, instant queries", 72000, 600, 3000, 600},
  };
  for (const Scenario& s : scenarios) {
    MetricInputs in;
    in.scale_factor = 1000;
    in.streams = 7;
    in.t_load_sec = s.load;
    in.t_qr1_sec = s.qr1;
    in.t_dm_sec = s.dm;
    in.t_qr2_sec = s.qr2;
    double denom = s.qr1 + s.dm + s.qr2 + 0.01 * 7 * s.load;
    std::printf("%-44s %10.0f %10.0f\n", s.name, denom, QphDs(in));
  }
  std::printf("-> auxiliaries help until their build time outweighs the "
              "query gain.\n\n");

  // 2. Stream scaling: the numerator grows with S but so does the load
  // charge; with fixed hardware the query runs also stretch ~linearly in
  // S, so QphDS cannot be inflated by over-subscribing streams.
  std::printf("stream scaling (fixed hardware, QR time ~ S):\n");
  std::printf("%6s %12s %12s\n", "S", "QphDS@SF", "per stream");
  for (int s : {3, 7, 11, 15, 31}) {
    MetricInputs in;
    in.scale_factor = 1000;
    in.streams = s;
    in.t_load_sec = 7200;
    in.t_qr1_sec = 900.0 * s;  // saturated system: time scales with S
    in.t_qr2_sec = 900.0 * s;
    in.t_dm_sec = 1800;
    std::printf("%6d %12.0f %12.1f\n", s, QphDs(in), QphDs(in) / s);
  }
  std::printf("\n");

  // 3. The paper's argument against a geometric-mean power metric: a
  // 6h->2h improvement on one long query matters more than 6s->2s on a
  // short one, but the geometric mean rewards both identically.
  std::printf("arithmetic vs geometric mean (paper's power-test "
              "critique):\n");
  double times_a[4] = {21600, 3600, 600, 6};   // one 6-hour monster
  double times_b[4] = {7200, 3600, 600, 6};    // monster tuned to 2 hours
  double times_c[4] = {21600, 3600, 600, 2};   // 6-second query tuned to 2
  auto arith = [](const double* t) {
    return (t[0] + t[1] + t[2] + t[3]) / 4;
  };
  auto geo = [](const double* t) {
    return std::pow(t[0] * t[1] * t[2] * t[3], 0.25);
  };
  std::printf("  baseline           arith %8.1f   geo %8.1f\n",
              arith(times_a), geo(times_a));
  std::printf("  6h query -> 2h     arith %8.1f   geo %8.1f\n",
              arith(times_b), geo(times_b));
  std::printf("  6s query -> 2s     arith %8.1f   geo %8.1f\n",
              arith(times_c), geo(times_c));
  std::printf(
      "-> the geometric mean improves identically (x%.3f) for both\n"
      "   tunings; the arithmetic total only rewards the one that matters.\n"
      "   Hence TPC-DS dropped the power test (paper §5.3).\n",
      geo(times_a) / geo(times_b));
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
