// Reproduces Figures 8-10 of the paper: the data-maintenance algorithms —
// non-history-keeping updates, history-keeping (SCD) updates, and fact
// inserts with business-key -> surrogate-key translation — timed per
// operation over the 12-operation refresh workload.

#include <cstdio>

#include "bench_util.h"
#include "maintenance/maintenance.h"

namespace tpcds {
namespace {

void Run() {
  double sf = bench::BenchScaleFactor(0.01);
  std::unique_ptr<Database> db = bench::LoadDatabase(sf);

  MaintenanceOptions options;
  options.scale_factor = sf;
  options.refresh_fraction = 0.02;
  options.dimension_updates = 200;

  MaintenanceReport report;
  Status st = RunDataMaintenance(db.get(), options, &report);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return;
  }

  std::printf(
      "=== Figures 8-10: Data Maintenance Operations (SF %.3f) ===\n\n",
      sf);
  std::printf("%-32s %12s %12s %14s\n", "operation", "rows", "seconds",
              "rows/sec");
  for (const MaintenanceOpResult& op : report.operations) {
    std::printf("%-32s %12lld %12.4f %14.0f\n", op.operation.c_str(),
                static_cast<long long>(op.rows_affected), op.seconds,
                op.seconds > 0 ? op.rows_affected / op.seconds : 0.0);
  }
  std::printf("%-32s %12lld %12.4f\n", "total",
              static_cast<long long>(report.TotalRows()),
              report.TotalSeconds());

  std::printf(
      "\nFig. 8  = inplace_update:* (find business key, overwrite fields)\n"
      "Fig. 9  = scd_update:*      (close open revision, insert new one)\n"
      "Fig. 10 = fact_insert:*     (translate business keys against the\n"
      "          *current* dimension state, insert clustered by date)\n"
      "fact_delete:* models the partition-drop delete of §4.2.\n");
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
