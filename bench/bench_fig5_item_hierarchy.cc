// Reproduces Figure 5 of the paper: the single-inheritance item hierarchy
// (brand -> class -> category), measured from generated item data.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "dsgen/generator.h"
#include "util/flatfile.h"

namespace tpcds {
namespace {

void Run() {
  GeneratorOptions options;
  options.scale_factor = 0.05;
  Result<std::unique_ptr<TableGenerator>> gen =
      MakeGenerator("item", options);
  MemoryRowSink sink;
  if (!gen.ok() || !(*gen)->Generate(&sink).ok()) {
    std::fprintf(stderr, "item generation failed\n");
    std::abort();
  }
  // Columns: 8 i_brand, 10 i_class, 12 i_category.
  std::map<std::string, std::set<std::string>> classes_by_category;
  std::map<std::string, std::set<std::string>> categories_by_class;
  std::map<std::string, std::set<std::string>> classes_by_brand;
  std::map<std::string, std::set<std::string>> brands_by_class;
  for (const auto& row : sink.rows()) {
    const std::string& brand = row[8];
    const std::string& cls = row[10];
    const std::string& cat = row[12];
    classes_by_category[cat].insert(cls);
    categories_by_class[cat + "/" + cls].insert(cat);
    classes_by_brand[cls + "#" + brand].insert(cls);
    brands_by_class[cat + "/" + cls].insert(brand);
  }

  std::printf("=== Figure 5: Item Hierarchy (from %zu item rows) ===\n\n",
              sink.rows().size());
  std::printf("%-14s %8s %8s\n", "category", "classes", "brands");
  int64_t total_classes = 0;
  int64_t total_brands = 0;
  for (const auto& [cat, classes] : classes_by_category) {
    int64_t brands = 0;
    for (const std::string& cls : classes) {
      brands += static_cast<int64_t>(brands_by_class[cat + "/" + cls].size());
    }
    std::printf("%-14s %8zu %8lld\n", cat.c_str(), classes.size(),
                static_cast<long long>(brands));
    total_classes += static_cast<int64_t>(classes.size());
    total_brands += brands;
  }
  std::printf("%-14s %8lld %8lld\n", "total",
              static_cast<long long>(total_classes),
              static_cast<long long>(total_brands));

  // Single inheritance: every class maps to exactly one category.
  bool single = true;
  for (const auto& [key, cats] : categories_by_class) {
    if (cats.size() != 1) single = false;
  }
  std::printf(
      "\nsingle inheritance (every class has exactly one parent "
      "category): %s\n",
      single ? "HOLDS" : "VIOLATED");
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
