// Reproduces Table 2 of the paper: table cardinalities across the
// published scale factors — linear fact scaling, sub-linear dimension
// scaling — and validates the scaling model against generated data at a
// development scale.

#include <cstdio>

#include "dsgen/generator.h"
#include "scaling/scaling.h"
#include "util/flatfile.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

struct PaperRow {
  const char* table;
  int64_t paper[4];  // SF 100 / 1000 / 10000 / 100000
};

void Run() {
  std::printf("=== Table 2: Table Cardinalities (paper vs. model) ===\n");
  const PaperRow rows[] = {
      {"store_sales",
       {288000000, 2900000000LL, 30000000000LL, 297000000000LL}},
      {"store_returns", {14000000, 147000000, 1500000000, 15000000000LL}},
      {"store", {200, 500, 750, 1500}},
      {"customer", {2000000, 8000000, 20000000, 100000000}},
      {"item", {200000, 300000, 400000, 500000}},
  };
  const int sfs[4] = {100, 1000, 10000, 100000};
  for (const PaperRow& row : rows) {
    std::printf("%s\n", row.table);
    for (int i = 0; i < 4; ++i) {
      int64_t model = ScalingModel::RowCount(row.table, sfs[i]);
      double ratio = static_cast<double>(model) /
                     static_cast<double>(row.paper[i]);
      std::printf("  SF %-7d paper %15s   model %15s   ratio %.3f\n",
                  sfs[i], FormatWithCommas(row.paper[i]).c_str(),
                  FormatWithCommas(model).c_str(), ratio);
    }
  }

  std::printf("\nAll tables at the published scale factors:\n");
  std::printf("%-24s", "table");
  for (int sf : ScalingModel::ValidScaleFactors()) {
    std::printf(" %14d", sf);
  }
  std::printf("\n");
  for (const std::string& table : GeneratorTableNames()) {
    std::printf("%-24s", table.c_str());
    for (int sf : ScalingModel::ValidScaleFactors()) {
      std::printf(" %14s",
                  FormatWithCommas(ScalingModel::RowCount(table, sf))
                      .c_str());
    }
    std::printf("\n");
  }

  // Validation: generated row counts at a development scale match the
  // model (exact for dimensions, within ticket-granularity for facts).
  std::printf("\nModel vs. generated rows at SF 0.005:\n");
  GeneratorOptions options;
  options.scale_factor = 0.005;
  for (const char* table : {"customer", "item", "store", "store_sales",
                            "web_returns"}) {
    Result<std::unique_ptr<TableGenerator>> gen =
        MakeGenerator(table, options);
    if (!gen.ok()) continue;
    CountingRowSink sink;
    if (!(*gen)->Generate(&sink).ok()) continue;
    std::printf("  %-16s model %10s   generated %10s\n", table,
                FormatWithCommas(ScalingModel::RowCount(table, 0.005))
                    .c_str(),
                FormatWithCommas(static_cast<int64_t>(sink.rows())).c_str());
  }
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
