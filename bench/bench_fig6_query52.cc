// Reproduces Figure 6 of the paper: Query 52, the ad-hoc example — brand
// revenue for one manager's items in a holiday month — timed with
// google-benchmark under both execution paths (star transformation vs.
// pure hash joins).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "qgen/qgen.h"
#include "templates/templates.h"

namespace tpcds {
namespace {

Database* GlobalDb() {
  static Database* db =
      bench::LoadDatabase(bench::BenchScaleFactor(0.01)).release();
  return db;
}

std::string Q52Sql() {
  static const std::string& sql = *[] {
    QueryGenerator qgen(19620718);
    const QueryTemplate* t = FindTemplate(52);
    return new std::string(qgen.Instantiate(*t, 1).ValueOrDie());
  }();
  return sql;
}

void BM_Query52_StarTransformation(benchmark::State& state) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.star_transformation = true;
  int64_t rows = 0;
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(Q52Sql(), options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    rows = static_cast<int64_t>(r->rows.size());
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Query52_StarTransformation)->Unit(benchmark::kMillisecond);

void BM_Query52_HashJoinOnly(benchmark::State& state) {
  Database* db = GlobalDb();
  PlannerOptions options;
  options.star_transformation = false;
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(Q52Sql(), options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Query52_HashJoinOnly)->Unit(benchmark::kMillisecond);

// Substitution variance: different streams = different bind variables,
// the comparability design keeps runtimes in one band (paper §4.1).
void BM_Query52_SubstitutionSweep(benchmark::State& state) {
  Database* db = GlobalDb();
  QueryGenerator qgen(19620718);
  const QueryTemplate* t = FindTemplate(52);
  int stream = 0;
  for (auto _ : state) {
    Result<std::string> sql = qgen.Instantiate(*t, stream++ % 16);
    Result<QueryResult> r = db->Query(*sql);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Query52_SubstitutionSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpcds

BENCHMARK_MAIN();
