// Reproduces the paper's Figure 4 discussion: the simple date-range query
//
//   SELECT s_date, SUM(s_sales) FROM sales
//   WHERE s_date BETWEEN D1 AND D2 GROUP BY s_date
//
// executed under many (D1, D2) substitutions. Substitutions drawn inside
// one comparability zone qualify a near-constant number of rows; the same
// spread drawn from the synthetic-style whole-year domain does not. This
// is the property that makes TPC-DS bind variables fair (paper §3.2).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "qgen/qgen.h"
#include "util/string_util.h"

namespace tpcds {
namespace {

struct Spread {
  double mean = 0;
  double cv = 0;  // coefficient of variation
  int64_t min = 0;
  int64_t max = 0;
};

Spread Measure(const std::vector<int64_t>& counts) {
  Spread s;
  if (counts.empty()) return s;
  double sum = 0;
  s.min = counts[0];
  s.max = counts[0];
  for (int64_t c : counts) {
    sum += static_cast<double>(c);
    s.min = std::min(s.min, c);
    s.max = std::max(s.max, c);
  }
  s.mean = sum / static_cast<double>(counts.size());
  double var = 0;
  for (int64_t c : counts) {
    var += (c - s.mean) * (c - s.mean);
  }
  var /= static_cast<double>(counts.size());
  s.cv = s.mean > 0 ? std::sqrt(var) / s.mean : 0;
  return s;
}

void Run() {
  std::unique_ptr<Database> db =
      bench::LoadDatabase(bench::BenchScaleFactor(0.01));
  QueryGenerator qgen(19620718);

  constexpr int kSubstitutions = 25;
  std::printf("=== Figure 4: Query Comparability Under Substitution ===\n");
  std::printf("query: SELECT d_date, SUM(ss_ext_sales_price) ... WHERE\n");
  std::printf("       d_date BETWEEN D1 AND D1+30 GROUP BY d_date\n\n");

  for (int zone = 1; zone <= 3; ++zone) {
    QueryTemplate t;
    t.id = 900 + zone;
    t.name = "fig4";
    t.text = StringPrintf(
        "define D = date(30, %d);\n"
        "SELECT COUNT(*) AS qualifying, SUM(ss_ext_sales_price) AS rev "
        "FROM store_sales, date_dim "
        "WHERE ss_sold_date_sk = d_date_sk "
        "  AND d_date BETWEEN CAST('[D]' AS DATE) "
        "                 AND (CAST('[D]' AS DATE) + 30)",
        zone);
    std::vector<int64_t> counts;
    for (int s = 0; s < kSubstitutions; ++s) {
      Result<std::string> sql = qgen.Instantiate(t, s);
      if (!sql.ok()) continue;
      Result<QueryResult> r = db->Query(*sql);
      if (!r.ok()) continue;
      counts.push_back(r->rows[0][0].AsInt());
    }
    Spread s = Measure(counts);
    std::printf(
        "zone %d:   %2d substitutions   rows mean %9.0f   min %8lld   "
        "max %8lld   cv %5.1f%%\n",
        zone, kSubstitutions, s.mean, static_cast<long long>(s.min),
        static_cast<long long>(s.max), 100.0 * s.cv);
  }

  // Contrast: ranges drawn uniformly over the whole year straddle zones,
  // so qualifying counts swing with the seasonal step.
  {
    std::vector<int64_t> counts;
    QueryGenerator whole_year(7);
    for (int s = 0; s < kSubstitutions; ++s) {
      QueryTemplate t;
      t.id = 999;
      t.name = "fig4-any";
      t.text =
          "define Y = random(1998, 2001, uniform);\n"
          "define DOY = random(1, 330, uniform);\n"
          "SELECT COUNT(*) AS qualifying FROM store_sales, date_dim "
          "WHERE ss_sold_date_sk = d_date_sk "
          "  AND d_date BETWEEN (CAST('1998-01-01' AS DATE) + [DOY]) "
          "                 AND (CAST('1998-01-01' AS DATE) + [DOY] + 30) ";
      Result<std::string> sql = whole_year.Instantiate(t, s);
      if (!sql.ok()) continue;
      Result<QueryResult> r = db->Query(*sql);
      if (!r.ok()) continue;
      counts.push_back(r->rows[0][0].AsInt());
    }
    Spread s = Measure(counts);
    std::printf(
        "no zone:  %2d substitutions   rows mean %9.0f   min %8lld   "
        "max %8lld   cv %5.1f%%   <- unconstrained substitution\n",
        kSubstitutions, s.mean, static_cast<long long>(s.min),
        static_cast<long long>(s.max), 100.0 * s.cv);
  }
  std::printf(
      "\nWithin-zone substitutions keep qualifying-row counts nearly\n"
      "constant (low cv); unconstrained ranges do not — the paper's\n"
      "argument for comparability zones.\n");
}

}  // namespace
}  // namespace tpcds

int main() {
  tpcds::Run();
  return 0;
}
