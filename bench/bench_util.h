#ifndef TPCDS_BENCH_BENCH_UTIL_H_
#define TPCDS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "engine/database.h"

namespace tpcds {
namespace bench {

/// Default development scale factor for benchmark databases. Overridable
/// via the TPCDS_BENCH_SF environment variable (e.g. TPCDS_BENCH_SF=0.05).
inline double BenchScaleFactor(double fallback = 0.01) {
  const char* env = std::getenv("TPCDS_BENCH_SF");
  if (env != nullptr) {
    double sf = std::strtod(env, nullptr);
    if (sf > 0) return sf;
  }
  return fallback;
}

/// Creates and loads a TPC-DS database at `sf`; aborts on failure (bench
/// binaries have no error channel worth wiring).
inline std::unique_ptr<Database> LoadDatabase(double sf) {
  auto db = std::make_unique<Database>();
  Status st = db->CreateTpcdsTables();
  if (st.ok()) {
    GeneratorOptions options;
    options.scale_factor = sf;
    st = db->LoadTpcdsData(options);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "bench database load failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return db;
}

}  // namespace bench
}  // namespace tpcds

#endif  // TPCDS_BENCH_BENCH_UTIL_H_
