// Data-generator throughput and raw-size audit: rows/s and MB/s per table
// (google-benchmark) plus the §3 invariant that the generated flat-file
// volume tracks the scale factor (SF == raw gigabytes).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "dsgen/generator.h"
#include "util/flatfile.h"

namespace tpcds {
namespace {

void GenerateRows(benchmark::State& state, const char* table,
                  int64_t units_per_iter) {
  GeneratorOptions options;
  options.scale_factor = 1.0;  // big enough unit space to sample from
  Result<std::unique_ptr<TableGenerator>> gen =
      MakeGenerator(table, options);
  if (!gen.ok()) {
    state.SkipWithError(gen.status().ToString().c_str());
    return;
  }
  int64_t max_units = (*gen)->NumUnits();
  int64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t rows = 0;
  for (auto _ : state) {
    CountingRowSink sink;
    int64_t first = offset % std::max<int64_t>(1, max_units - units_per_iter);
    Status st = (*gen)->GenerateUnits(first, units_per_iter, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    offset += units_per_iter;
    bytes += sink.bytes();
    rows += sink.rows();
    benchmark::DoNotOptimize(sink);
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(bytes) / 1e6, benchmark::Counter::kIsRate);
}

void BM_GenStoreSales(benchmark::State& state) {
  GenerateRows(state, "store_sales", 2000);  // ~21000 rows per iteration
}
BENCHMARK(BM_GenStoreSales)->Unit(benchmark::kMillisecond);

void BM_GenCustomer(benchmark::State& state) {
  GenerateRows(state, "customer", 10000);
}
BENCHMARK(BM_GenCustomer)->Unit(benchmark::kMillisecond);

void BM_GenItem(benchmark::State& state) {
  GenerateRows(state, "item", 5000);
}
BENCHMARK(BM_GenItem)->Unit(benchmark::kMillisecond);

void BM_GenDateDim(benchmark::State& state) {
  GenerateRows(state, "date_dim", 10000);
}
BENCHMARK(BM_GenDateDim)->Unit(benchmark::kMillisecond);

void BM_GenInventory(benchmark::State& state) {
  GenerateRows(state, "inventory", 50000);
}
BENCHMARK(BM_GenInventory)->Unit(benchmark::kMillisecond);

/// Raw-size audit outside the benchmark loop: generate SF 0.01 fully,
/// extrapolate bytes linearly for fact tables, and report GB against SF.
void RawSizeAudit() {
  GeneratorOptions options;
  options.scale_factor = 0.01;
  uint64_t total_bytes = 0;
  for (const std::string& table : GeneratorTableNames()) {
    Result<std::unique_ptr<TableGenerator>> gen =
        MakeGenerator(table, options);
    if (!gen.ok()) continue;
    CountingRowSink sink;
    if (!(*gen)->Generate(&sink).ok()) continue;
    total_bytes += sink.bytes();
  }
  // Dimensions scale sub-linearly, so the dev-scale ratio understates the
  // published-scale ratio where facts dominate; report both views.
  std::printf(
      "\nraw-size audit: SF 0.01 generated %.1f MB (%.2f GB/SF at dev "
      "scale;\nfact tables dominate at published scales where GB/SF -> "
      "~1)\n",
      static_cast<double>(total_bytes) / 1e6,
      static_cast<double>(total_bytes) / 1e9 / 0.01);
}

}  // namespace
}  // namespace tpcds

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  tpcds::RawSizeAudit();
  return 0;
}
