// Reproduces Figure 7 of the paper: Query 20, the reporting example — item
// revenue share within its class on the catalog channel, featuring the
// SQL-99 OLAP amendment's windowed aggregate SUM(SUM(x)) OVER (PARTITION
// BY ...).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "qgen/qgen.h"
#include "templates/templates.h"

namespace tpcds {
namespace {

Database* GlobalDb() {
  static Database* db =
      bench::LoadDatabase(bench::BenchScaleFactor(0.01)).release();
  return db;
}

void BM_Query20_Reporting(benchmark::State& state) {
  Database* db = GlobalDb();
  QueryGenerator qgen(19620718);
  const QueryTemplate* t = FindTemplate(20);
  std::string sql = qgen.Instantiate(*t, 1).ValueOrDie();
  int64_t rows = 0;
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(sql);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    rows = static_cast<int64_t>(r->rows.size());
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Query20_Reporting)->Unit(benchmark::kMillisecond);

// The window function is the expensive extra over a plain group-by:
// measure the same aggregation without the revenue-ratio window.
void BM_Query20_WithoutWindow(benchmark::State& state) {
  Database* db = GlobalDb();
  QueryGenerator qgen(19620718);
  // Same scan/join/aggregation as q20, minus the revenue-ratio window.
  QueryTemplate t;
  t.id = 20;
  t.name = "q20-nowindow";
  t.text = R"(
define CATS = list(categories, 3);
define SDATE = date(30, 1);
SELECT i_item_desc, i_category, i_class, i_current_price,
       SUM(cs_ext_sales_price) AS itemrevenue
FROM catalog_sales, item, date_dim
WHERE cs_item_sk = i_item_sk
  AND i_category IN ([CATS])
  AND cs_sold_date_sk = d_date_sk
  AND d_date BETWEEN '[SDATE]'
                 AND (CAST('[SDATE]' AS DATE) + 30)
GROUP BY i_item_id, i_item_desc, i_category, i_class, i_current_price
ORDER BY i_category, i_class, i_item_id, i_item_desc
)";
  Result<std::string> sql = qgen.Instantiate(t, 1);
  if (!sql.ok()) {
    state.SkipWithError(sql.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<QueryResult> r = db->Query(*sql);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Query20_WithoutWindow)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpcds

BENCHMARK_MAIN();
