#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer and runs the engine + driver test
# binaries — the ones that exercise the morsel-parallel executor and the
# multi-stream driver. Intended for CI and pre-merge checks of anything
# touching src/engine/executor.cc or the thread pool.
#
#   scripts/check_tsan.sh [build-dir]
#
# Pass TPCDS_SANITIZE=address via the environment to run the same set
# under AddressSanitizer instead.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
SANITIZER="${TPCDS_SANITIZE:-thread}"

cmake -B "$BUILD_DIR" -S . -DTPCDS_SANITIZE="$SANITIZER" >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
  engine_parallel_test engine_exec_test engine_smoke_test \
  engine_differential_test driver_test governance_test robustness_test \
  batch_kernel_test encoding_test agg_sort_parallel_test recovery_test \
  stats_test data_facade_test service_test chaos_test

# halt_on_error makes a race fail the script, not just print a report.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"

for test in engine_parallel_test engine_exec_test engine_smoke_test \
            engine_differential_test driver_test governance_test \
            robustness_test batch_kernel_test encoding_test \
            agg_sort_parallel_test recovery_test stats_test \
            data_facade_test service_test chaos_test; do
  echo "== $SANITIZER: $test"
  "$BUILD_DIR/tests/$test"
done
echo "== $SANITIZER clean"
