#!/usr/bin/env bash
# Builds the tree with AddressSanitizer (+ LeakSanitizer where available)
# and runs the engine, driver and governance test binaries — proving that
# every governed error path (deadline, budget trip, injected fault,
# cancellation) unwinds without leaking partial operator state.
#
#   scripts/check_asan.sh [build-dir]
#
# Thin wrapper over check_tsan.sh, which accepts the sanitizer via
# TPCDS_SANITIZE; the dedicated build dir keeps ASan and TSan object
# files from clobbering each other.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TPCDS_SANITIZE=address exec scripts/check_tsan.sh "$BUILD_DIR"
