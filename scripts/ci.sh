#!/usr/bin/env bash
# The full pre-merge gate, in increasing order of cost:
#
#   1. plain build + complete ctest suite
#   2. AddressSanitizer pass over the engine/driver/governance tests
#   3. ThreadSanitizer pass over the same set
#
#   scripts/ci.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== build + ctest"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== encoded differential sweep"
# Byte-identity oracle for the lightweight column encodings: the sampled
# 17-template differential sweep re-runs with encoded_execution off and
# on, at intra-query parallelism 1 and 4, against storage rewritten by
# EncodeStorage() — every combination must produce byte-identical CSVs
# and an unchanged content hash (the test exits non-zero otherwise).
"$BUILD_DIR/tests/engine_differential_test" \
  --gtest_filter='EncodedDifferentialTest.*'

echo "== cost-based differential sweep"
# Byte-identity oracle for the cost-based planner: the same 17-template
# sample re-runs with cost_based off and on, at intra-query parallelism
# 1 and 4 — every combination must produce byte-identical CSVs, so join
# reordering, star-transform ordering and pushdown gating can never
# change an answer, only its speed.
"$BUILD_DIR/tests/engine_differential_test" \
  --gtest_filter='CostBasedDifferentialTest.*'

echo "== perf smoke"
# One pass over the 99 templates at smoke scale; fails on a >30% drop in
# aggregate scanned rows/sec against the checked-in baseline JSON.
"$BUILD_DIR/bench/bench_query_throughput" -json \
  "$BUILD_DIR/bench_query_throughput.json"
scripts/check_perf.py "$BUILD_DIR/bench_query_throughput.json"

echo "== service overload smoke"
# Saturating closed loop through the admission-controlled query service:
# 12 client streams split over 3 priority classes contend for 1 worker
# slot and a 4-deep queue, plus an injected admission fault — shedding,
# backpressure and retries all fire, and full_benchmark exits 1 if any
# query is lost (admission counters unbalanced) or the global memory
# pool fails to drain.
"$BUILD_DIR/examples/full_benchmark" -scale 0.002 -queries 4 -streams 12 \
  -service-slots 1 -service-queue 4 -service-deadline 30000 \
  -service-spread 3 -faults "admit=nth:9"

echo "== durability crash sweep"
# End-to-end recovery drill: checkpoint after load, crash the DM run at
# an injected fault, then recover from checkpoint + WAL and verify the
# rebuilt database is byte-identical to the live one (exit 1 otherwise).
DURABILITY_DIR="$(mktemp -d)"
trap 'rm -rf "$DURABILITY_DIR"' EXIT
"$BUILD_DIR/examples/full_benchmark" -scale 0.002 -queries 3 \
  -checkpoint-dir "$DURABILITY_DIR/ckpt" -wal "$DURABILITY_DIR/dm.wal" \
  -recover -faults "maintenance=nth:7"

echo "== chaos drill"
# Standing profile x schedule drill: Zipf-skewed binds with 2-step
# session chains across 8 concurrent streams, a 20 ms read/refresh duty
# cycle publishing generations underneath them, and a time-phased fault
# schedule that crashes the DM mid-generation, drops a WAL append, and
# stresses admission/shedding. full_benchmark exits 1 unless every
# standing invariant holds: balanced counters, drained pool, no lost
# queries, bounded retries, byte-identical recovery, clean audit.
CHAOS_DIR="$(mktemp -d)"
trap 'rm -rf "$DURABILITY_DIR" "$CHAOS_DIR"' EXIT
"$BUILD_DIR/examples/full_benchmark" -scale 0.002 -queries 4 -streams 8 \
  -profile "hot-skew,chain=2,refresh_ms=20,refresh_cycles=3" \
  -chaos "maintenance@0+60000=nth:2,wal-append@10+60000=nth:25,shed@0+60000=every:5,admit@0+60000=nth:7" \
  -service-slots 2 -service-queue 6 -service-spread 2 \
  -checkpoint-dir "$CHAOS_DIR/ckpt" -wal "$CHAOS_DIR/drill.wal"

echo "== cold-start attach smoke"
# Save a checkpoint during the benchmark, then cold-start it both ways —
# deep heap load and O(1) mmap attach — run a query sample on each and
# compare content hashes + answers (full_benchmark exits 1 on any
# divergence). Also exercises the overlapped DM/QR2 generation path.
ATTACH_DIR="$(mktemp -d)"
trap 'rm -rf "$DURABILITY_DIR" "$CHAOS_DIR" "$ATTACH_DIR"' EXIT
"$BUILD_DIR/examples/full_benchmark" -scale 0.002 -queries 5 -overlap \
  -checkpoint-dir "$ATTACH_DIR/ckpt" -wal "$ATTACH_DIR/dm.wal" \
  -recover -attach

echo "== asan"
scripts/check_asan.sh build-asan

echo "== tsan"
scripts/check_tsan.sh build-tsan

echo "== ci clean"
