#!/usr/bin/env python3
"""Perf-regression gate over bench_query_throughput JSON output.

Compares a fresh run against the checked-in baseline and fails when
aggregate scanned rows/sec drops by more than the threshold (default
30%). The agg_heavy / order_by_heavy group subtotals (when present in
both files) gate at the same threshold, so an aggregation- or
sort-specific regression cannot hide behind the workload-wide total.
Per-template drops are reported for context but do not gate: single
templates are noisy at smoke scale factors.

The WAL durability overhead gates within the current run alone (no
baseline needed): WAL-on data maintenance must keep at least
(1 - threshold) of the WAL-off refresh throughput.

The encoded_scan group (scan-heavy templates over dictionary / RLE /
frame-of-reference encoded storage) gates three ways: rows/sec against
the baseline at the standard threshold, bytes touched strictly below
the plain pass from the same run, and a 1.5x compression-ratio floor
on the fact tables.

The workload-profile groups (profile_hot_skew / profile_reporting /
profile_chains — the chaos-harness scenario classes run as closed
loops) gate rows/sec against the baseline at the standard threshold
and p99 latency against 3x the baseline p99 (25 ms floor), so a slow
path taken only under skewed binds or session chains cannot hide
behind the uniform sweep.

The optimizer group (join-heavy templates, cost_based off vs on) gates
its cost-based rows/sec against the baseline at the standard threshold
and, within the current run, requires the cost-based side to match or
beat the structural planner's aggregate rows/sec (minus a 3% timer
allowance: both sides run min-of-reps interleaved, but the smoke-scale
queries are milliseconds long and a real plan regression shows as tens
of percent, not single digits).

    scripts/check_perf.py <current.json> [baseline.json] [--threshold 0.30]
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / (
    "BENCH_query_throughput.json"
)


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("benchmark") != "bench_query_throughput":
        sys.exit(f"{path}: not a bench_query_throughput JSON file")
    return data


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="JSON from this run")
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional drop in rows/sec")
    args = parser.parse_args()

    cur = load(args.current)
    base = load(args.baseline)

    if cur.get("scale_factor") != base.get("scale_factor"):
        print(f"warning: scale factors differ (current "
              f"{cur.get('scale_factor')}, baseline "
              f"{base.get('scale_factor')}); rows/sec still comparable")

    cur_rate = cur["total_rows_per_sec"]
    base_rate = base["total_rows_per_sec"]
    change = (cur_rate - base_rate) / base_rate if base_rate else 0.0
    print(f"aggregate rows/sec: baseline {base_rate:,.0f} -> current "
          f"{cur_rate:,.0f} ({change:+.1%})")

    base_by_id = {t["id"]: t for t in base["templates"]}
    worst = []
    for t in cur["templates"]:
        b = base_by_id.get(t["id"])
        if not b or b["rows_per_sec"] <= 0:
            continue
        delta = (t["rows_per_sec"] - b["rows_per_sec"]) / b["rows_per_sec"]
        if delta < -args.threshold:
            worst.append((delta, t["id"], b["rows_per_sec"],
                          t["rows_per_sec"]))
    for delta, qid, was, now in sorted(worst)[:10]:
        print(f"  note: q{qid:02d} {was:,.0f} -> {now:,.0f} rows/sec "
              f"({delta:+.1%})")

    failures = []
    if base_rate and change < -args.threshold:
        failures.append(f"aggregate rows/sec dropped {-change:.1%}")

    # Operator-shaped subtotals: each group gates independently so a
    # regression confined to aggregation or ordering still fails.
    # service_concurrent gates the admission-control closed loop (128
    # sessions over 2 worker slots) the same way, so service overhead
    # cannot grow unnoticed.
    cur_groups = cur.get("groups", {})
    base_groups = base.get("groups", {})
    for name in ("agg_heavy", "order_by_heavy", "service_concurrent",
                 "encoded_scan", "optimizer", "profile_hot_skew",
                 "profile_reporting", "profile_chains"):
        if name not in cur_groups or name not in base_groups:
            continue
        cg, bg = cur_groups[name], base_groups[name]
        if not bg.get("rows_per_sec"):
            continue
        gchange = (cg["rows_per_sec"] - bg["rows_per_sec"]) / (
            bg["rows_per_sec"]
        )
        print(f"{name} rows/sec: baseline {bg['rows_per_sec']:,.0f} -> "
              f"current {cg['rows_per_sec']:,.0f} ({gchange:+.1%})")
        if gchange < -args.threshold:
            failures.append(f"{name} rows/sec dropped {-gchange:.1%}")

    # Encoded-scan invariants gate within the current run alone: scans
    # over encoded storage must actually read fewer bytes than the plain
    # pass, and the fact tables must compress by at least 1.5x — so the
    # lightweight encodings can never silently decay into plain storage
    # with extra indirection.
    enc = cur_groups.get("encoded_scan", {})
    if enc.get("plain_bytes_touched"):
        bratio = enc.get("bytes_touched", 0) / enc["plain_bytes_touched"]
        print(f"encoded_scan bytes touched: plain "
              f"{enc['plain_bytes_touched']:,} -> encoded "
              f"{enc.get('bytes_touched', 0):,} ({bratio:.1%})")
        if bratio >= 1.0:
            failures.append(
                "encoded scans touch no fewer bytes than plain "
                f"({bratio:.1%})")
        cratio = enc.get("fact_compression_ratio", 0.0)
        print(f"encoded_scan fact compression: {cratio:.2f}x "
              f"({enc.get('fact_plain_bytes', 0):,} -> "
              f"{enc.get('fact_encoded_bytes', 0):,} payload bytes)")
        if cratio < 1.5:
            failures.append(
                f"fact-table compression ratio {cratio:.2f}x is below the "
                "1.5x floor")

    # Cost-based-optimizer invariant, gated within the current run alone:
    # aggregate rows/sec with cost_based on must not fall below the
    # structural (cost_based off) planner over the same statements — the
    # optimizer is only allowed to win or tie, never to regress the
    # workload it exists to speed up. A 3% allowance absorbs timer noise
    # on the millisecond-long smoke queries; a genuine plan regression
    # lands far below it. Max q-error is printed for context.
    opt = cur_groups.get("optimizer", {})
    if opt.get("cost_off_rows_per_sec"):
        ratio = opt.get("rows_per_sec", 0) / opt["cost_off_rows_per_sec"]
        print(f"optimizer rows/sec: cost_based off "
              f"{opt['cost_off_rows_per_sec']:,.0f} -> on "
              f"{opt.get('rows_per_sec', 0):,.0f} ({ratio - 1:+.1%}); "
              f"max q-error {opt.get('max_q_error', 0):.2f}")
        if ratio < 0.97:
            failures.append(
                f"cost_based-on throughput is {ratio:.1%} of cost_based-off")

    # Workload-profile tail latency: each chaos-harness scenario class
    # (skewed binds, reporting-heavy mix, iterative chains) gates its own
    # p99 against 3x the baseline's. A 25 ms floor absorbs scheduler
    # noise on the millisecond-long smoke statements — a genuine tail
    # regression (a slow path taken only under skew or chaining) lands
    # well past 3x.
    for name in ("profile_hot_skew", "profile_reporting", "profile_chains"):
        cg = cur_groups.get(name, {})
        bg = base_groups.get(name, {})
        if cg.get("p99_ms") is None or bg.get("p99_ms") is None:
            continue
        limit = max(bg["p99_ms"], 25.0) * 3.0
        print(f"{name} latency: p50 {cg.get('p50_ms', 0):.1f} ms, "
              f"p99 {cg['p99_ms']:.1f} ms "
              f"(baseline p99 {bg['p99_ms']:.1f} ms, limit {limit:.1f} ms)")
        if cg["p99_ms"] > limit:
            failures.append(
                f"{name} p99 {cg['p99_ms']:.1f} ms exceeds "
                f"{limit:.1f} ms limit")

    # Tail latency of the concurrent-service loop, for context (the
    # closed loop's p99 tracks queue depth; rows/sec above is the gate).
    cur_svc = cur_groups.get("service_concurrent", {})
    if cur_svc.get("p50_ms") is not None:
        print(f"service_concurrent latency: p50 {cur_svc['p50_ms']:.1f} ms, "
              f"p95 {cur_svc.get('p95_ms', 0):.1f} ms, "
              f"p99 {cur_svc.get('p99_ms', 0):.1f} ms "
              f"(peak queue {cur_svc.get('peak_queue_depth', 0)}, "
              f"shed {cur_svc.get('shed', 0)}, "
              f"rejected {cur_svc.get('rejected', 0)})")

    # Durability overhead: WAL-on vs WAL-off maintenance throughput from
    # the same run — a self-relative gate, so it needs no baseline entry.
    dm_off = cur_groups.get("maintenance_wal_off", {})
    dm_on = cur_groups.get("maintenance_wal_on", {})
    if dm_off.get("rows_per_sec") and dm_on.get("rows_per_sec") is not None:
        ratio = dm_on["rows_per_sec"] / dm_off["rows_per_sec"]
        print(f"maintenance rows/sec: wal_off "
              f"{dm_off['rows_per_sec']:,.0f} -> wal_on "
              f"{dm_on['rows_per_sec']:,.0f} ({ratio - 1:+.1%})")
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"WAL-on maintenance throughput is {ratio:.1%} of WAL-off")

    # mmap-attach overhead: attached storage serves queries straight out
    # of the mapping and must keep at least 90% of the heap-loaded
    # throughput from the same run — a fixed floor, independent of the
    # regression threshold, so zero-copy reads never silently decay into
    # a slow path.
    at_heap = cur_groups.get("attach_heap", {})
    at_mmap = cur_groups.get("attach_mmap", {})
    if at_heap.get("rows_per_sec") and at_mmap.get("rows_per_sec") is not None:
        ratio = at_mmap["rows_per_sec"] / at_heap["rows_per_sec"]
        print(f"cold-start rows/sec: heap {at_heap['rows_per_sec']:,.0f} -> "
              f"mmap {at_mmap['rows_per_sec']:,.0f} ({ratio - 1:+.1%}); "
              f"open {at_heap['open_seconds']:.4f}s -> "
              f"{at_mmap['open_seconds']:.4f}s")
        if ratio < 0.90:
            failures.append(
                f"mmap-attach throughput is {ratio:.1%} of heap-loaded "
                "(floor 90%)")

    if failures:
        sys.exit("FAIL: " + "; ".join(failures) +
                 f" (> {args.threshold:.0%} threshold)")
    print("perf gate passed")


if __name__ == "__main__":
    main()
